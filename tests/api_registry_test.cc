// Conformance suite for the unified Solver API: every registered solver
// must (a) meet its advertised l1 bound against an independent dense
// solve, (b) conserve probability mass where it exposes residues, and
// (c) produce identical results from a reused SolverContext and from
// fresh ones — with no full-vector workspace assigns after the first
// query for solvers that advertise workspace reuse.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/query.h"
#include "api/registry.h"
#include "api/solver.h"
#include "approx/speedppr.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ppr {
namespace {

using ::ppr::testing::ExactPprDense;
using ::ppr::testing::Sum;

constexpr uint64_t kSeed = 20260730;
constexpr double kAlpha = 0.2;

/// A fixture graph per precondition class. The strict fixture (no dead
/// ends + in-adjacency) serves backward-push solvers; the general one
/// has a dead end to exercise the dead-end→source convention.
struct Fixtures {
  Graph general;  // ba_120: scale-free, has a dead end pattern
  Graph strict;   // complete_10 + cycle edges: dead-end-free
};

Fixtures MakeFixtures() {
  Fixtures f;
  Rng rng(99);
  f.general = BarabasiAlbert(120, 3, rng);
  f.strict = CompleteGraph(10);
  f.strict.BuildInAdjacency();
  return f;
}

const Fixtures& SharedFixtures() {
  static const Fixtures* fixtures = new Fixtures(MakeFixtures());
  return *fixtures;
}

/// Picks the fixture a solver can run on and prepares it.
const Graph& PrepareOnFixture(Solver& solver) {
  const Fixtures& f = SharedFixtures();
  const SolverCapabilities caps = solver.capabilities();
  const Graph& graph =
      (caps.needs_dead_end_free || caps.needs_in_adjacency) ? f.strict
                                                            : f.general;
  Status status = solver.Prepare(graph);
  EXPECT_TRUE(status.ok()) << solver.name() << ": " << status.ToString();
  return graph;
}

std::vector<std::string> AllSolverNames() {
  return SolverRegistry::Global().Names();
}

double L1(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

/// Exact PageRank on a small graph: dense solve of
/// (I − (1−α)·P̃ᵀ)·x = α·(1/n)·1 with uniform dangling redistribution.
std::vector<double> ExactPageRankDense(const Graph& graph, double alpha) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> x(n, 1.0 / static_cast<double>(n) * alpha);
  for (NodeId i = 0; i < n; ++i) a[i][i] = 1.0;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = graph.OutDegree(u);
    if (d == 0) {
      const double w = (1.0 - alpha) / n;
      for (NodeId v = 0; v < n; ++v) a[v][u] -= w;
    } else {
      const double w = (1.0 - alpha) / d;
      for (NodeId v : graph.OutNeighbors(u)) a[v][u] -= w;
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    NodeId pivot = k;
    for (NodeId r = k + 1; r < n; ++r) {
      if (std::fabs(a[r][k]) > std::fabs(a[pivot][k])) pivot = r;
    }
    std::swap(a[k], a[pivot]);
    std::swap(x[k], x[pivot]);
    for (NodeId r = k + 1; r < n; ++r) {
      const double f = a[r][k] / a[k][k];
      if (f == 0.0) continue;
      for (NodeId c = k; c < n; ++c) a[r][c] -= f * a[k][c];
      x[r] -= f * x[k];
    }
  }
  for (NodeId k = n; k-- > 0;) {
    double sum = x[k];
    for (NodeId c = k + 1; c < n; ++c) sum -= a[k][c] * x[c];
    x[k] = sum / a[k][k];
  }
  return x;
}

TEST(SolverRegistryTest, EveryAlgorithmIsRegistered) {
  // The api_redesign contract: all nine algorithm families plus the
  // index variants dispatch by name.
  for (const char* name :
       {"fwdpush", "prioritypush", "powerpush", "powitr", "pagerank", "bepi",
        "mc", "fora", "fora-index", "speedppr", "speedppr-index", "resacc",
        "bippr", "hubppr", "dynfwdpush"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(name)) << name;
  }
}

TEST(SolverRegistryTest, CreateRejectsUnknownNamesAndOptions) {
  auto unknown = SolverRegistry::Global().Create("nosuchsolver");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto bad_option = SolverRegistry::Global().Create("powerpush:frobnicate=1");
  ASSERT_FALSE(bad_option.ok());
  EXPECT_EQ(bad_option.status().code(), StatusCode::kInvalidArgument);

  auto bad_value = SolverRegistry::Global().Create("mc:eps=banana");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, PowerPushAblationOptionsStayConformant) {
  // The §5 ablation axes are registry options now (the ablation benches
  // depend on them): epochs=0 disables the epoch schedule, and
  // queue_phase=false skips the FIFO phase entirely. Both are exact
  // ablations — every variant must still meet its advertised L1 bound.
  for (const char* spec :
       {"powerpush:epochs=0", "powerpush:queue_phase=false",
        "powerpush:queue_phase=false,epochs=0"}) {
    auto created = SolverRegistry::Global().Create(spec);
    ASSERT_TRUE(created.ok()) << spec << ": " << created.status().ToString();
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    const Graph& graph = PrepareOnFixture(*solver);

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 1;
    PprResult result;
    Status status = solver->Solve(query, context, &result);
    ASSERT_TRUE(status.ok()) << spec << ": " << status.ToString();
    const double error =
        L1(result.scores, ExactPprDense(graph, query.source, kAlpha));
    EXPECT_LE(error, result.l1_bound + 1e-9)
        << spec << ": l1=" << error << " advertised=" << result.l1_bound;
  }

  auto bad_bool = SolverRegistry::Global().Create("powerpush:queue_phase=maybe");
  ASSERT_FALSE(bad_bool.ok());
  EXPECT_EQ(bad_bool.status().code(), StatusCode::kInvalidArgument);

  auto bad_epochs = SolverRegistry::Global().Create("powerpush:epochs=-3");
  ASSERT_FALSE(bad_epochs.ok());
  EXPECT_EQ(bad_epochs.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, HelpTextListsEverySolver) {
  const std::string help = SolverRegistry::Global().HelpText();
  for (const std::string& name : AllSolverNames()) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(SolverConformanceTest, L1ErrorWithinAdvertisedBound) {
  for (const std::string& name : AllSolverNames()) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    const Graph& graph = PrepareOnFixture(*solver);

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 1;
    PprResult result;
    Status status = solver->Solve(query, context, &result);
    ASSERT_TRUE(status.ok()) << name << ": " << status.ToString();
    ASSERT_EQ(result.scores.size(), graph.num_nodes()) << name;
    EXPECT_EQ(result.solver, name == "fora-index"       ? "fora"
                             : name == "speedppr-index" ? "speedppr"
                                                        : name);

    const std::vector<double> exact =
        solver->capabilities().family == SolverFamily::kGlobal
            ? ExactPageRankDense(graph, kAlpha)
            : ExactPprDense(graph, query.source, kAlpha);
    const double error = L1(result.scores, exact);
    ASSERT_TRUE(std::isfinite(result.l1_bound)) << name;
    EXPECT_LE(error, result.l1_bound + 1e-9)
        << name << ": l1=" << error << " advertised=" << result.l1_bound;
  }
}

TEST(SolverConformanceTest, MassConservationWhereResiduesExposed) {
  for (const std::string& name : AllSolverNames()) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    if (!solver->capabilities().exposes_residues) continue;
    PrepareOnFixture(*solver);

    SolverContext context(kSeed);
    PprQuery query;
    query.source = 2;
    query.want_residues = true;
    PprResult result;
    ASSERT_TRUE(solver->Solve(query, context, &result).ok()) << name;
    ASSERT_TRUE(result.has_residues()) << name;
    EXPECT_NEAR(Sum(result.scores) + Sum(result.residues), 1.0, 1e-9)
        << name;
  }
}

TEST(SolverConformanceTest, ContextReuseMatchesFreshContexts) {
  const std::vector<NodeId> sources = {0, 3, 5};
  for (const std::string& name : AllSolverNames()) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    const bool reuses = solver->capabilities().reuses_workspace;
    PrepareOnFixture(*solver);

    SolverContext reused(kSeed);
    uint64_t assigns_after_first = 0;
    for (size_t i = 0; i < sources.size(); ++i) {
      PprQuery query;
      query.source = sources[i];

      reused.Reseed(kSeed);
      PprResult warm;
      ASSERT_TRUE(solver->Solve(query, reused, &warm).ok()) << name;

      SolverContext fresh(kSeed);
      PprResult cold;
      ASSERT_TRUE(solver->Solve(query, fresh, &cold).ok()) << name;

      ASSERT_EQ(warm.scores.size(), cold.scores.size()) << name;
      for (size_t v = 0; v < warm.scores.size(); ++v) {
        ASSERT_EQ(warm.scores[v], cold.scores[v])
            << name << " source=" << sources[i] << " v=" << v;
      }

      if (i == 0) {
        assigns_after_first = reused.full_assigns();
      } else if (reuses) {
        // The advertised sparse-reset contract: repeated queries on one
        // context perform no further full-vector assigns.
        EXPECT_EQ(reused.full_assigns(), assigns_after_first)
            << name << " query " << i;
        EXPECT_GT(reused.sparse_resets(), 0u) << name;
      }
    }
  }
}

TEST(SolverConformanceTest, SinglePairTargetMatchesFullVectorEntry) {
  for (const char* name : {"bippr", "hubppr"}) {
    auto created = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    const Graph& graph = PrepareOnFixture(*solver);

    PprQuery query;
    query.source = 1;
    query.target = 4;
    SolverContext context(kSeed);
    PprResult result;
    ASSERT_TRUE(solver->Solve(query, context, &result).ok()) << name;
    ASSERT_EQ(result.scores.size(), graph.num_nodes());
    const std::vector<double> exact =
        ExactPprDense(graph, query.source, kAlpha);
    EXPECT_NEAR(result.scores[query.target], exact[query.target], 0.1)
        << name;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (v != query.target) EXPECT_EQ(result.scores[v], 0.0) << name;
    }
  }
}

TEST(SolverConformanceTest, TopKRequestFillsSortedTopNodes) {
  auto created = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  PrepareOnFixture(*solver);

  PprQuery query;
  query.source = 0;
  query.top_k = 5;
  SolverContext context(kSeed);
  PprResult result;
  ASSERT_TRUE(solver->Solve(query, context, &result).ok());
  ASSERT_EQ(result.top_nodes.size(), 5u);
  for (size_t i = 1; i < result.top_nodes.size(); ++i) {
    EXPECT_GE(result.scores[result.top_nodes[i - 1]],
              result.scores[result.top_nodes[i]]);
  }
}

TEST(SolverConformanceTest, SolveBeforePrepareFails) {
  auto created = SolverRegistry::Global().Create("fwdpush");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  SolverContext context;
  PprResult result;
  Status status = solver->Solve({}, context, &result);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SolverConformanceTest, PreconditionsAreValidatedAtPrepare) {
  const Fixtures& f = SharedFixtures();
  auto bippr = SolverRegistry::Global().Create("bippr");
  ASSERT_TRUE(bippr.ok());
  // general fixture: no in-adjacency built → FailedPrecondition.
  Status status = bippr.value()->Prepare(f.general);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SolverConformanceTest, AdapterMatchesFreeFunctionBitForBit) {
  // The adapters recompose the same internals the free functions call;
  // given the same RNG stream they must agree exactly. Checked here for
  // SpeedPPR, the paper's flagship.
  const Graph& graph = SharedFixtures().general;
  auto created = SolverRegistry::Global().Create("speedppr:eps=0.4");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(graph).ok());

  SolverContext context(kSeed);
  PprQuery query;
  query.source = 7;
  PprResult result;
  // Two solves: the second runs on a warm (sparsely reset) workspace.
  ASSERT_TRUE(solver->Solve(query, context, &result).ok());
  context.Reseed(kSeed);
  ASSERT_TRUE(solver->Solve(query, context, &result).ok());

  ApproxOptions options;
  options.epsilon = 0.4;
  Rng rng(kSeed);
  std::vector<double> expected;
  SpeedPpr(graph, query.source, options, rng, &expected);

  ASSERT_EQ(result.scores.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(result.scores[v], expected[v]) << "v=" << v;
  }
}

}  // namespace
}  // namespace ppr
