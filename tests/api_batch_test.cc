// Tests for the registry-driven eval drivers: BatchSolve, the
// solver-polymorphic TopKPpr, and the solver TimePerQuery overload.

#include <memory>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "approx/speedppr.h"
#include "eval/batch.h"
#include "eval/experiment.h"
#include "eval/topk_query.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(BatchSolveTest, SpecPathMatchesDirectSpeedPprPerSource) {
  Rng graph_rng(5);
  Graph g = ChungLuPowerLaw(150, 6.0, 2.5, graph_rng);
  const std::vector<NodeId> sources = {1, 4, 9, 16};

  // Independent baseline: the free function, one Rng per source seeded
  // with the batch convention. (BatchSpeedPpr itself routes through
  // BatchSolve, so it cannot serve as the cross-check.)
  ApproxOptions options;
  options.epsilon = 0.4;
  std::vector<std::vector<double>> direct(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    Rng rng(SplitMix64(7 ^ (i * 0xbf58476d1ce4e5b9ULL)).Next());
    SpeedPpr(g, sources[i], options, rng, &direct[i]);
  }

  PprQuery base;
  base.epsilon = 0.4;
  auto rows = BatchSolve(g, "speedppr:eps=0.4", sources, base, /*seed=*/7);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    for (size_t v = 0; v < direct[i].size(); ++v) {
      ASSERT_EQ(rows.value()[i][v], direct[i][v]) << "row " << i;
    }
  }
}

TEST(BatchSolveTest, WorksAcrossFamilies) {
  Rng graph_rng(6);
  Graph g = BarabasiAlbert(80, 3, graph_rng);
  const std::vector<NodeId> sources = {0, 2, 40};
  for (const char* spec : {"powerpush", "fwdpush", "mc:eps=0.5"}) {
    auto rows = BatchSolve(g, spec, sources);
    ASSERT_TRUE(rows.ok()) << spec;
    ASSERT_EQ(rows.value().size(), sources.size()) << spec;
    for (const auto& row : rows.value()) {
      ASSERT_EQ(row.size(), g.num_nodes()) << spec;
      EXPECT_NEAR(testing::Sum(row), 1.0, 0.2) << spec;
    }
  }
}

TEST(BatchSolveTest, InvalidSpecSurfacesTheError) {
  Graph g = CycleGraph(8);
  auto rows = BatchSolve(g, "warpdrive", {0, 1});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

TEST(TopKSolverTest, MatchesExactTopKOnSeparatedGraph) {
  Graph g = StarGraph(20);  // hub 0 dominates every spoke's PPR
  auto created = SolverRegistry::Global().Create("speedppr");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(g).ok());

  SolverContext context(3);
  TopKOptions options;
  TopKResult result = TopKPpr(*solver, context, /*source=*/1, 2, options);
  ASSERT_EQ(result.nodes.size(), 2u);
  // Source and hub are the two dominant nodes from any spoke.
  EXPECT_TRUE((result.nodes[0] == 1 && result.nodes[1] == 0) ||
              (result.nodes[0] == 0 && result.nodes[1] == 1));
  EXPECT_GE(result.rounds, 1);
}

TEST(TimePerQueryTest, SolverOverloadTimesEachSource) {
  Graph g = CycleGraph(32);
  auto created = SolverRegistry::Global().Create("powerpush");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(g).ok());
  SolverContext context;
  const std::vector<NodeId> sources = {0, 5, 10};
  auto seconds = TimePerQuery(*solver, context, sources);
  ASSERT_EQ(seconds.size(), sources.size());
  for (double s : seconds) EXPECT_GE(s, 0.0);
  // The batch ran on one warm context: exactly one full workspace init.
  EXPECT_EQ(context.full_assigns(), 1u);
  EXPECT_EQ(context.sparse_resets(), 2u);
}

}  // namespace
}  // namespace ppr
