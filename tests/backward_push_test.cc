#include "core/backward_push.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

using testing::ExactPprDense;

TEST(BackwardPushTest, EstimatesColumnOfPprMatrix) {
  // reserve[v] must estimate pi(v, target) within rmax for every source v.
  for (auto& tc : testing::SmallGraphZoo()) {
    if (tc.graph.CountDeadEnds() > 0) continue;
    tc.graph.BuildInAdjacency();
    const NodeId target = 1 % tc.graph.num_nodes();
    BackwardPushOptions options;
    options.rmax = 1e-6;
    PprEstimate estimate;
    BackwardPush(tc.graph, target, options, &estimate);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      std::vector<double> row = ExactPprDense(tc.graph, v, options.alpha);
      ASSERT_NEAR(estimate.reserve[v], row[target], options.rmax * 2)
          << tc.name << " v=" << v;
    }
  }
}

TEST(BackwardPushTest, ResiduesBelowThresholdOnTermination) {
  Graph g = CycleGraph(32);
  g.BuildInAdjacency();
  BackwardPushOptions options;
  options.rmax = 1e-5;
  PprEstimate estimate;
  BackwardPush(g, 0, options, &estimate);
  for (double r : estimate.residue) ASSERT_LE(r, options.rmax + 1e-18);
}

TEST(BackwardPushTest, TargetReserveAtLeastAlpha) {
  // pi(t, t) >= alpha, and backward push resolves the target itself
  // first.
  Graph g = testing::SmallGraphZoo()[4].graph;  // complete_10
  g.BuildInAdjacency();
  BackwardPushOptions options;
  options.rmax = 1e-8;
  PprEstimate estimate;
  BackwardPush(g, 3, options, &estimate);
  EXPECT_GE(estimate.reserve[3], options.alpha - 1e-12);
}

TEST(BackwardPushTest, InvariantHoldsMidway) {
  // The defining invariant pi(v,t) = reserve[v] + sum_u residue[u] *
  // pi(v,u) must hold at ANY stopping point, not just at termination.
  // Run with a coarse rmax (stopping early) and verify against the dense
  // exact matrix.
  Graph g = PaperExampleGraph();
  g.BuildInAdjacency();
  const NodeId target = 2;
  BackwardPushOptions options;
  options.rmax = 0.05;  // coarse: leaves substantial residue
  PprEstimate estimate;
  BackwardPush(g, target, options, &estimate);

  // Precompute all rows of the exact PPR matrix.
  std::vector<std::vector<double>> pi_rows;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    pi_rows.push_back(ExactPprDense(g, v, options.alpha));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double rhs = estimate.reserve[v];
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      rhs += estimate.residue[u] * pi_rows[v][u];
    }
    EXPECT_NEAR(rhs, pi_rows[v][target], 1e-12) << "v=" << v;
  }
}

TEST(BackwardPushTest, HighInDegreeTargetTouchesManyNodes) {
  Graph g = StarGraph(50);
  g.BuildInAdjacency();
  BackwardPushOptions options;
  options.rmax = 1e-9;
  PprEstimate estimate;
  SolveStats stats = BackwardPush(g, 0, options, &estimate);
  EXPECT_GT(stats.push_operations, 25u);
  // Every leaf reaches the hub: all reserves positive.
  for (NodeId v = 0; v < 50; ++v) EXPECT_GT(estimate.reserve[v], 0.0);
}

TEST(BackwardPushDeathTest, RequiresInAdjacencyAndNoDeadEnds) {
  Graph g = CycleGraph(8);
  BackwardPushOptions options;
  PprEstimate estimate;
  EXPECT_DEATH(BackwardPush(g, 0, options, &estimate), "transpose");

  Graph path = PathGraph(4);
  path.BuildInAdjacency();
  EXPECT_DEATH(BackwardPush(path, 0, options, &estimate), "dead-end");
}

}  // namespace
}  // namespace ppr
