#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(ComponentsTest, SingleComponentGraph) {
  Graph g = CycleGraph(10);
  g.BuildInAdjacency();
  ComponentResult result = WeaklyConnectedComponents(g);
  EXPECT_EQ(result.num_components(), 1u);
  EXPECT_EQ(result.sizes[0], 10u);
  EXPECT_EQ(result.giant, 0u);
}

TEST(ComponentsTest, DisjointPieces) {
  GraphBuilder b;
  b.AddEdge(0, 1);   // pair
  b.AddEdge(2, 3);   // chain of 3
  b.AddEdge(3, 4);
  BuildOptions options;
  options.remove_isolated = false;
  Graph g = b.Build(options);
  g.BuildInAdjacency();
  ComponentResult result = WeaklyConnectedComponents(g);
  EXPECT_EQ(result.num_components(), 2u);
  EXPECT_EQ(result.component_of[0], result.component_of[1]);
  EXPECT_EQ(result.component_of[2], result.component_of[3]);
  EXPECT_EQ(result.component_of[3], result.component_of[4]);
  EXPECT_NE(result.component_of[0], result.component_of[2]);
  EXPECT_EQ(result.sizes[result.giant], 3u);
}

TEST(ComponentsTest, DirectionIgnored) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);
  Graph g = b.Build();
  g.BuildInAdjacency();
  ComponentResult result = WeaklyConnectedComponents(g);
  EXPECT_EQ(result.num_components(), 1u);
}

TEST(ComponentsTest, MaskRestrictsScope) {
  Graph g = CycleGraph(6);
  g.BuildInAdjacency();
  // Mask out node 0 and 3: the cycle splits into two paths {1,2}, {4,5}.
  std::vector<uint8_t> mask = {0, 1, 1, 0, 1, 1};
  ComponentResult result = WeaklyConnectedComponents(g, mask);
  EXPECT_EQ(result.num_components(), 2u);
  EXPECT_EQ(result.component_of[1], result.component_of[2]);
  EXPECT_EQ(result.component_of[4], result.component_of[5]);
  EXPECT_NE(result.component_of[1], result.component_of[4]);
  // Masked nodes carry the sentinel id.
  EXPECT_EQ(result.component_of[0], result.num_components());
  EXPECT_EQ(result.component_of[3], result.num_components());
}

TEST(ComponentsTest, SizesSumToScopeSize) {
  Rng rng(3);
  Graph g = ErdosRenyi(300, 1.2, rng);  // sparse: several components
  g.BuildInAdjacency();
  ComponentResult result = WeaklyConnectedComponents(g);
  NodeId total = 0;
  for (NodeId size : result.sizes) total += size;
  EXPECT_EQ(total, g.num_nodes());
  // component_of values agree with sizes.
  std::vector<NodeId> counted(result.num_components(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    counted[result.component_of[v]]++;
  }
  EXPECT_EQ(counted, result.sizes);
}

TEST(ComponentsDeathTest, RequiresInAdjacency) {
  Graph g = CycleGraph(4);
  EXPECT_DEATH(WeaklyConnectedComponents(g), "transpose");
}

}  // namespace
}  // namespace ppr
