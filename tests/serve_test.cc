// Deterministic stress/soak coverage for PprServer.
//
// The central claim is end-to-end determinism under concurrency: a
// query submitted with a seed comes back bit-identical to a serial
// Solver::Solve of the same (query, seed) on a fresh context —
// regardless of client threads, worker threads, queue order, or which
// warm pooled context the query lands on. Plus the operational
// contracts: backpressure rejects (never blocks, never drops silently),
// shutdown completes accepted work, and the context pool recycles warm
// workspaces instead of paying per-query O(n) initialization.

#include "serve/ppr_server.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace ppr {
namespace {

constexpr uint64_t kSeedBase = 0x5e12e20260731ULL;

/// Same fixture scheme as the registry conformance suite: a scale-free
/// graph with a dead-end pattern for general solvers, a strict
/// (dead-end-free, in-adjacency) one for backward-push solvers.
struct Fixtures {
  Graph general;
  Graph strict;
};

const Fixtures& SharedFixtures() {
  static const Fixtures* fixtures = [] {
    auto* f = new Fixtures();
    Rng rng(99);
    f->general = BarabasiAlbert(120, 3, rng);
    f->strict = CompleteGraph(10);
    f->strict.BuildInAdjacency();
    return f;
  }();
  return *fixtures;
}

const Graph& FixtureFor(const Solver& solver) {
  const SolverCapabilities caps = solver.capabilities();
  return (caps.needs_dead_end_free || caps.needs_in_adjacency)
             ? SharedFixtures().strict
             : SharedFixtures().general;
}

uint64_t QuerySeed(unsigned client, unsigned index) {
  return SplitStream(kSeedBase, client * 101 + index).NextUint64();
}

/// A solver whose DoSolve blocks on a gate — the deterministic way to
/// hold the server's workers busy while tests probe queue behavior.
class GateSolver : public Solver {
 public:
  std::string_view name() const override { return "gate"; }
  SolverCapabilities capabilities() const override { return {}; }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until `count` DoSolve calls are waiting on the gate.
  void AwaitEntered(unsigned count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= count; });
  }

  /// How many queries reached DoSolve (shed queries never do).
  unsigned entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext&,
                 PprResult* result) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_++;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
    result->scores.assign(graph()->num_nodes(), 0.0);
    result->scores[query.source] = 1.0;
    return Status::OK();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  unsigned entered_ = 0;
};

TEST(PprServerTest, ConcurrentResultsBitIdenticalToSerialForEverySolver) {
  constexpr unsigned kClients = 4;
  constexpr unsigned kQueriesPerClient = 3;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    // The server's hosted instance.
    PprServerOptions options;
    options.workers = 4;
    options.contexts = 2;  // fewer contexts than workers: forced recycling
    PprServer server(options);
    auto hosted = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(hosted.ok()) << name;
    const Graph& graph = FixtureFor(*hosted.value());
    ASSERT_TRUE(server.AddSolver(name, graph).ok()) << name;
    ASSERT_TRUE(server.Start().ok()) << name;

    // A second, independent instance answers the same queries serially.
    auto serial = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(serial.ok()) << name;
    std::unique_ptr<Solver> reference = std::move(serial).ValueOrDie();
    ASSERT_TRUE(reference->Prepare(graph).ok()) << name;

    std::vector<std::vector<PprFuture>> futures(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (unsigned q = 0; q < kQueriesPerClient; ++q) {
          PprQuery query;
          query.source = (c * kQueriesPerClient + q) % graph.num_nodes();
          auto submitted = server.Submit(query, /*solver=*/{},
                                         QuerySeed(c, q));
          ASSERT_TRUE(submitted.ok())
              << name << ": " << submitted.status().ToString();
          futures[c].push_back(std::move(submitted).ValueOrDie());
        }
      });
    }
    for (std::thread& t : clients) t.join();

    for (unsigned c = 0; c < kClients; ++c) {
      for (unsigned q = 0; q < kQueriesPerClient; ++q) {
        PprResult served;
        Status status = futures[c][q].Get(&served);
        ASSERT_TRUE(status.ok()) << name << ": " << status.ToString();

        PprQuery query;
        query.source = (c * kQueriesPerClient + q) % graph.num_nodes();
        SolverContext context(QuerySeed(c, q));
        PprResult expected;
        ASSERT_TRUE(reference->Solve(query, context, &expected).ok()) << name;

        ASSERT_EQ(served.scores.size(), expected.scores.size()) << name;
        for (size_t v = 0; v < expected.scores.size(); ++v) {
          ASSERT_EQ(served.scores[v], expected.scores[v])
              << name << " client=" << c << " q=" << q << " v=" << v;
        }
      }
    }
    server.Stop();
    const PprServerStats stats = server.Snapshot();
    EXPECT_EQ(stats.submitted, kClients * kQueriesPerClient) << name;
    EXPECT_EQ(stats.completed, kClients * kQueriesPerClient) << name;
    EXPECT_EQ(stats.failed, 0u) << name;
    EXPECT_EQ(stats.rejected, 0u) << name;
  }
}

TEST(PprServerTest, BatchMatchesAcrossWorkerCounts) {
  // The synchronous batch path derives per-entry seeds from the batch
  // seed, so the same batch on servers with different worker counts
  // returns identical rows — the serve-layer analogue of BatchSolve's
  // thread-count independence.
  const Graph& graph = SharedFixtures().general;
  std::vector<PprQuery> queries(6);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].source = static_cast<NodeId>((7 * i) % graph.num_nodes());
  }

  std::vector<std::vector<PprResult>> rows(2);
  const unsigned worker_counts[2] = {1, 4};
  for (int s = 0; s < 2; ++s) {
    PprServerOptions options;
    options.workers = worker_counts[s];
    PprServer server(options);
    ASSERT_TRUE(server.AddSolver("mc", graph).ok());
    ASSERT_TRUE(server.Start().ok());
    Status status = server.SolveBatch(queries, &rows[s], {}, /*seed=*/77);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_EQ(rows[0].size(), rows[1].size());
  for (size_t i = 0; i < rows[0].size(); ++i) {
    ASSERT_EQ(rows[0][i].scores.size(), rows[1][i].scores.size());
    for (size_t v = 0; v < rows[0][i].scores.size(); ++v) {
      ASSERT_EQ(rows[0][i].scores[v], rows[1][i].scores[v])
          << "i=" << i << " v=" << v;
    }
  }
}

TEST(PprServerTest, FullQueueRejectsWithUnavailableAndNeverBlocks) {
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  // First query occupies the worker (wait until it is actually inside
  // DoSolve so the queue is deterministically empty again)...
  auto inflight = server.Submit({});
  ASSERT_TRUE(inflight.ok());
  gate_ptr->AwaitEntered(1);

  // ...then exactly queue_capacity more are admitted...
  auto queued1 = server.Submit({});
  auto queued2 = server.Submit({});
  ASSERT_TRUE(queued1.ok());
  ASSERT_TRUE(queued2.ok());

  // ...and the next is refused immediately with a retryable status.
  auto refused = server.Submit({});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected, 1u);

  // Nothing was silently dropped: every accepted query completes.
  gate_ptr->Open();
  for (PprFuture* f : {&inflight.value(), &queued1.value(), &queued2.value()}) {
    PprResult result;
    EXPECT_TRUE(f->Get(&result).ok());
  }
  server.Stop();
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST(PprServerTest, SolveBatchBacksOffUnderBackpressureAndCountsOnce) {
  // A batch larger than worker + queue capacity must not hot-spin
  // resubmitting: blocked submissions wait out the bounded exponential
  // backoff and are admitted once the worker drains, and every
  // submission that found the queue full counts exactly once in
  // stats().rejected — never once per backoff round (the hold below
  // deliberately spans many rounds).
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(4);
  std::vector<PprResult> results;
  std::thread batcher([&] {
    Status status = server.SolveBatch(queries, &results);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  // Query 0 occupies the worker on the gate, query 1 fills the queue,
  // query 2 is now backing off; hold the gate long enough for many
  // backoff rounds (the cap is 8ms, so 40ms spans several).
  gate_ptr->AwaitEntered(1);
  while (server.stats().queue_depth < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  gate_ptr->Open();
  batcher.join();
  ASSERT_EQ(results.size(), queries.size());
  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, queries.size());
  // Query 2 was certainly refused at least once; queries 1 and 3 may
  // have been too, depending on pop/drain timing — but each at most
  // once. The 40ms hold spans dozens of backoff rounds, so a per-retry
  // counter would blow far past this bound.
  EXPECT_GE(stats.rejected, 1u);
  EXPECT_LE(stats.rejected, queries.size() - 1);
  server.Stop();
  EXPECT_EQ(server.stats().completed, queries.size());
}

TEST(PprServerTest, StopCompletesInFlightAndQueuedQueries) {
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 2;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprFuture> futures;
  for (int i = 0; i < 6; ++i) {
    auto submitted = server.Submit({});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  gate_ptr->AwaitEntered(2);  // both workers held mid-query

  std::thread stopper([&] { server.Stop(); });
  gate_ptr->Open();
  stopper.join();

  // Shutdown drained everything it had accepted.
  for (PprFuture& f : futures) {
    ASSERT_TRUE(f.done());
    PprResult result;
    EXPECT_TRUE(f.Get(&result).ok());
  }
  EXPECT_EQ(server.stats().completed, 6u);

  // The server refuses new work after Stop.
  auto late = server.Submit({});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PprServerTest, ContextPoolRecyclesInsteadOfAllocatingPerQuery) {
  // The conformance trick from api_registry_test, at the server level:
  // a single pooled context serving many queries through many workers
  // performs exactly one full O(n) workspace assign — every later query
  // is a sparse reset, even though 4 workers contend for the context.
  const Graph& graph = SharedFixtures().general;
  PprServerOptions options;
  options.workers = 4;
  options.contexts = 1;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(8);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].source = static_cast<NodeId>(i);
  }
  std::vector<PprResult> results;
  ASSERT_TRUE(server.SolveBatch(queries, &results).ok());
  EXPECT_EQ(server.context_pool().TotalFullAssigns(), 1u);

  ASSERT_TRUE(server.SolveBatch(queries, &results).ok());
  EXPECT_EQ(server.context_pool().TotalFullAssigns(), 1u)
      << "warm contexts must not re-pay the O(n) initialization";
  EXPECT_GE(server.context_pool().TotalSparseResets(), 15u);
  server.Stop();
}

TEST(PprServerTest, SoakMixedSolversUnderManyClients) {
  // Soak: two hosted solvers, 4 client threads interleaving 25 queries
  // each; every submission is accounted for, nothing hangs, nothing is
  // dropped, and spot-checked results replay serially bit for bit.
  const Graph& graph = SharedFixtures().general;
  PprServerOptions options;
  options.workers = 4;
  options.contexts = 3;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
  ASSERT_TRUE(server.AddSolver("mc:eps=0.7", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kClients = 4;
  constexpr unsigned kEach = 25;
  std::atomic<unsigned> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (unsigned q = 0; q < kEach; ++q) {
        PprQuery query;
        query.source = (13 * c + q) % graph.num_nodes();
        const char* solver = (c + q) % 2 == 0 ? "powerpush" : "mc:eps=0.7";
        auto submitted = server.Submit(query, solver, QuerySeed(c, q));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        PprResult result;
        Status status = submitted.value().Get(&result);
        ASSERT_TRUE(status.ok()) << status.ToString();
        if (result.scores.size() == graph.num_nodes()) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok_count.load(), kClients * kEach);
  const PprServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kEach);
  EXPECT_EQ(stats.completed, kClients * kEach);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Spot-check one replay per solver against a serial solve.
  for (const char* solver : {"powerpush", "mc:eps=0.7"}) {
    auto created = SolverRegistry::Global().Create(solver);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<Solver> reference = std::move(created).ValueOrDie();
    ASSERT_TRUE(reference->Prepare(graph).ok());
    // c=1,q=2 used "mc:eps=0.7" ((1+2)%2==1); c=1,q=3 used powerpush.
    const unsigned c = 1, q = solver[0] == 'p' ? 3 : 2;
    PprQuery query;
    query.source = (13 * c + q) % graph.num_nodes();
    SolverContext context(QuerySeed(c, q));
    PprResult expected;
    ASSERT_TRUE(reference->Solve(query, context, &expected).ok());
    // Nothing stored the served result above, so replay through a fresh
    // one-shot server to prove the end-to-end path is reproducible.
    PprServer replay_server({.workers = 2});
    ASSERT_TRUE(replay_server.AddSolver(solver, graph).ok());
    ASSERT_TRUE(replay_server.Start().ok());
    auto replay = replay_server.Submit(query, {}, QuerySeed(c, q));
    ASSERT_TRUE(replay.ok());
    PprResult served;
    ASSERT_TRUE(replay.value().Get(&served).ok());
    ASSERT_EQ(served.scores.size(), expected.scores.size());
    for (size_t v = 0; v < expected.scores.size(); ++v) {
      ASSERT_EQ(served.scores[v], expected.scores[v]) << solver << " v=" << v;
    }
  }
}

TEST(PprServerTest, LifecycleAndRoutingErrors) {
  const Graph& graph = SharedFixtures().general;
  PprServer server({.workers = 1});

  // Submit before Start.
  auto early = server.Submit({});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  // Start with no solver.
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);

  // Bad registry spec surfaces the registry's error.
  EXPECT_EQ(server.AddSolver("nosuchsolver", graph).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());

  // Duplicate spec string.
  EXPECT_EQ(server.AddSolver("powerpush", graph).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());

  // AddSolver after Start.
  EXPECT_EQ(server.AddSolver("mc", graph).code(),
            StatusCode::kFailedPrecondition);

  // Routing to a solver this server does not host.
  auto missing = server.Submit({}, "mc");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Per-query failures come back through the future, not the server.
  PprQuery bad;
  bad.source = graph.num_nodes() + 5;
  auto submitted = server.Submit(bad);
  ASSERT_TRUE(submitted.ok());
  PprResult result;
  EXPECT_EQ(submitted.value().Get(&result).code(),
            StatusCode::kInvalidArgument);
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().failed, 1u);

  // Stop is idempotent.
  server.Stop();
}

TEST(PprServerTest, SolveBatchPropagatesPerQueryFailures) {
  const Graph& graph = SharedFixtures().general;
  PprServer server({.workers = 2});
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(3);
  queries[1].source = graph.num_nodes() + 1;  // invalid
  std::vector<PprResult> results;
  Status status = server.SolveBatch(queries, &results);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(results.size(), 3u);
  // The valid entries were still answered.
  EXPECT_EQ(results[0].scores.size(), graph.num_nodes());
  EXPECT_EQ(results[2].scores.size(), graph.num_nodes());
  server.Stop();
}

// ---------------------------------------------------------------------
// Deadlines, shedding, degraded mode, future lifecycle
// ---------------------------------------------------------------------

TEST(PprServerTest, ExpiredDeadlineInQueueIsShedNeverSolved) {
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServer server({.workers = 1, .queue_capacity = 8});
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker, then park queries with a deadline far
  // shorter than the hold — by the time the worker gets to them their
  // budget is spent, so solving them would only waste the survivors'
  // capacity.
  auto inflight = server.Submit({});
  ASSERT_TRUE(inflight.ok());
  gate_ptr->AwaitEntered(1);

  PprQuery doomed;
  doomed.deadline = std::chrono::milliseconds(2);
  std::vector<PprFuture> parked;
  for (int i = 0; i < 3; ++i) {
    auto submitted = server.Submit(doomed);
    ASSERT_TRUE(submitted.ok());
    parked.push_back(std::move(submitted).ValueOrDie());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate_ptr->Open();

  for (PprFuture& f : parked) {
    EXPECT_EQ(f.Get(nullptr).code(), StatusCode::kDeadlineExceeded);
  }
  PprResult result;
  EXPECT_TRUE(inflight.value().Get(&result).ok());
  server.Stop();

  const PprServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  // Shed means shed: the solver only ever saw the in-flight query.
  EXPECT_EQ(gate_ptr->entered(), 1u);
}

TEST(PprServerTest, DegradedPolicyRoutesToFallbackOverWatermark) {
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.degraded.fallback_solver = "mc:eps=0.9";
  options.degraded.queue_watermark = 1;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.AddSolver("mc:eps=0.9", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  // Below the watermark: default routing, full fidelity.
  auto inflight = server.Submit({});
  ASSERT_TRUE(inflight.ok());
  gate_ptr->AwaitEntered(1);
  auto queued = server.Submit({});
  ASSERT_TRUE(queued.ok());

  // Queue depth is now 1 (>= watermark): a default-routed query is
  // rerouted to the relaxed fallback, an explicitly-routed one is not.
  auto degraded = server.Submit({});
  ASSERT_TRUE(degraded.ok());
  auto explicit_spec = server.Submit({}, "gate");
  ASSERT_TRUE(explicit_spec.ok());

  gate_ptr->Open();
  PprResult queued_result, degraded_result, explicit_result;
  ASSERT_TRUE(queued.value().Get(&queued_result).ok());
  ASSERT_TRUE(degraded.value().Get(&degraded_result).ok());
  ASSERT_TRUE(explicit_spec.value().Get(&explicit_result).ok());
  EXPECT_FALSE(queued_result.degraded);
  EXPECT_TRUE(degraded_result.degraded);
  EXPECT_EQ(degraded_result.solver, "mc");
  EXPECT_FALSE(explicit_result.degraded);
  server.Stop();
  const PprServerStats stats = server.Snapshot();  // one coherent read
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(PprServerTest, StartValidatesDegradedFallbackIsHosted) {
  const Graph& graph = SharedFixtures().general;
  PprServerOptions options;
  options.workers = 1;
  options.degraded.fallback_solver = "mc:eps=0.9";  // never AddSolver'd
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(PprServerTest, SolveBatchAdmissionBoundedByBudget) {
  // A wedged server (worker held, queue full) must not block SolveBatch
  // forever: the admission wait is bounded by batch_admission_budget
  // and surfaces as DeadlineExceeded. The legacy unbounded default is
  // covered by SolveBatchBacksOffUnderBackpressureAndCountsOnce.
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.batch_admission_budget = std::chrono::milliseconds(50);
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(3);
  std::vector<PprResult> results;
  Status batch_status;
  std::thread batcher([&] {
    batch_status = server.SolveBatch(queries, &results);
  });
  // Entry 0 occupies the worker, entry 1 fills the queue, entry 2 backs
  // off until its 50ms admission budget runs out. The batch call stays
  // blocked on the admitted entries until the gate opens — proving it
  // still waits for what it did admit.
  gate_ptr->AwaitEntered(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  gate_ptr->Open();
  batcher.join();

  EXPECT_EQ(batch_status.code(), StatusCode::kDeadlineExceeded);
  server.Stop();
  const PprServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GE(stats.rejected, 1u);
}

TEST(PprServerTest, FutureOutlivesServerAndRepeatedGetsAgree) {
  const Graph& graph = SharedFixtures().general;
  PprFuture survivor;
  {
    PprServer server({.workers = 1});
    ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
    ASSERT_TRUE(server.Start().ok());
    auto submitted = server.Submit({}, {}, /*seed=*/kSeedBase);
    ASSERT_TRUE(submitted.ok());
    survivor = std::move(submitted).ValueOrDie();
    server.Stop();
  }  // server destroyed; the future's shared state must stand alone

  ASSERT_TRUE(survivor.valid());
  ASSERT_TRUE(survivor.done());
  survivor.Wait();
  survivor.Wait();  // Wait is idempotent
  PprResult first, second;
  Status s1 = survivor.Get(&first);
  Status s2 = survivor.Get(&second);
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_EQ(s1.code(), s2.code());
  ASSERT_EQ(first.scores.size(), second.scores.size());
  for (size_t v = 0; v < first.scores.size(); ++v) {
    ASSERT_EQ(first.scores[v], second.scores[v]) << "v=" << v;
  }
  // Cancelling a finished query is a harmless no-op.
  survivor.Cancel();
  EXPECT_TRUE(survivor.Get(nullptr).ok());
}

TEST(PprServerTest, CancelledWhileQueuedCompletesWithCancelled) {
  const Graph& graph = SharedFixtures().general;
  auto gate = std::make_unique<GateSolver>();
  GateSolver* gate_ptr = gate.get();
  ASSERT_TRUE(gate->Prepare(graph).ok());

  PprServer server({.workers = 1, .queue_capacity = 4});
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  auto inflight = server.Submit({});
  ASSERT_TRUE(inflight.ok());
  gate_ptr->AwaitEntered(1);
  auto parked = server.Submit({});
  ASSERT_TRUE(parked.ok());

  parked.value().Cancel();
  gate_ptr->Open();
  EXPECT_EQ(parked.value().Get(nullptr).code(), StatusCode::kCancelled);
  EXPECT_TRUE(inflight.value().Get(nullptr).ok());
  server.Stop();
  const PprServerStats stats = server.Snapshot();  // one coherent read
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(gate_ptr->entered(), 1u);  // the cancelled query never ran
}

// ---------------------------------------------------------------------
// Updates under load (the evolving-graph serving contract)
// ---------------------------------------------------------------------

TEST(PprServerDynamicTest, ApplyUpdatesRoutesAndValidates) {
  Rng rng(41);
  Graph graph = ErdosRenyi(30, 3.0, rng);
  PprServer server({.workers = 2});
  ASSERT_TRUE(server.AddSolver("powerpush", graph).ok());
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-8", graph).ok());

  UpdateBatch batch;
  batch.Insert(0, 7);

  // Unknown spec.
  auto missing = server.ApplyUpdates(batch, "mc");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // The default solver here is static.
  auto on_static = server.ApplyUpdates(batch);
  ASSERT_FALSE(on_static.ok());
  EXPECT_EQ(on_static.status().code(), StatusCode::kFailedPrecondition);

  // Invalid batches are refused with nothing applied.
  UpdateBatch bad;
  bad.Delete(0, 0);
  auto invalid = server.ApplyUpdates(bad, "dynfwdpush:rmax=1e-8");
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().updates, 0u);

  // Updates are accepted before Start() (priming a graph) and while
  // running; the returned epoch counts mutations.
  auto before_start = server.ApplyUpdates(batch, "dynfwdpush:rmax=1e-8");
  ASSERT_TRUE(before_start.ok());
  EXPECT_EQ(before_start.value(), 1u);
  ASSERT_TRUE(server.Start().ok());
  UpdateStats stats;
  auto running =
      server.ApplyUpdates(batch, "dynfwdpush:rmax=1e-8", &stats);
  ASSERT_TRUE(running.ok());
  EXPECT_EQ(running.value(), 2u);
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(server.stats().updates, 2u);
  server.Stop();
}

TEST(PprServerDynamicTest, EpochConsistentUnderConcurrentUpdatesAndQueries) {
  // The acceptance claim, for all three dynamic solvers: with clients
  // querying while batches apply, every served result (a) stamps an
  // epoch that is exactly one of the batch boundaries — never a
  // half-applied state — and (b) matches the dense exact solution *of
  // that epoch's snapshot* within its advertised bound. For dynfwdpush
  // the bound (~1e-7) is far below the score drift a single update
  // causes here, so a torn or mis-stamped result cannot slip through;
  // for the walk-index tier the boundary-membership check carries that
  // weight while the ε bound polices the repaired index + estimate.
  constexpr NodeId kSource = 1;
  constexpr size_t kBatches = 6;
  Rng rng(17);
  Graph graph = ErdosRenyi(40, 3.0, rng);

  UpdateWorkloadOptions workload;
  workload.count = 30;
  workload.delete_fraction = 0.3;
  workload.seed = 23;
  UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();
  std::vector<UpdateBatch> batches(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    batches[b].updates.assign(
        stream.updates.begin() + b * stream.size() / kBatches,
        stream.updates.begin() + (b + 1) * stream.size() / kBatches);
  }

  // Replay the stream serially: exact solution per boundary epoch,
  // shared by every solver under test.
  std::map<uint64_t, std::vector<double>> exact;
  {
    DynamicGraph replay(graph);
    exact[0] = ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    for (const UpdateBatch& batch : batches) {
      ASSERT_TRUE(replay.Apply(batch).ok());
      exact[replay.epoch()] =
          ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    }
  }

  for (const char* spec : {"dynfwdpush:rmax=1e-9", "dynfora:eps=0.3",
                           "dynspeedppr:eps=0.3"}) {
    PprServer server({.workers = 3, .contexts = 2});
    ASSERT_TRUE(server.AddSolver(spec, graph).ok()) << spec;
    ASSERT_TRUE(server.Start().ok()) << spec;

    std::atomic<bool> done{false};
    std::vector<std::vector<PprFuture>> futures(2);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < futures.size(); ++c) {
      clients.emplace_back([&, c] {
        PprQuery query;
        query.source = kSource;
        while (!done.load(std::memory_order_relaxed)) {
          auto submitted = server.Submit(query);
          if (submitted.ok()) {
            futures[c].push_back(std::move(submitted).ValueOrDie());
          }
          std::this_thread::yield();
        }
      });
    }

    uint64_t final_epoch = 0;
    for (const UpdateBatch& batch : batches) {
      auto applied = server.ApplyUpdates(batch);
      ASSERT_TRUE(applied.ok()) << spec << ": " << applied.status().ToString();
      final_epoch = applied.value();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
    for (std::thread& t : clients) t.join();
    server.Stop();
    EXPECT_EQ(final_epoch, stream.size()) << spec;

    size_t checked = 0;
    for (const auto& client_futures : futures) {
      for (const PprFuture& future : client_futures) {
        PprResult result;
        Status status = future.Get(&result);
        if (!status.ok()) continue;  // shutdown race rejections only
        auto it = exact.find(result.epoch);
        ASSERT_NE(it, exact.end())
            << spec << ": result stamped epoch " << result.epoch
            << ", which is not a batch boundary — a torn update leaked";
        ASSERT_LT(L1Distance(result.scores, it->second),
                  result.l1_bound + 1e-11)
            << spec << " epoch " << result.epoch;
        checked++;
      }
    }
    EXPECT_GT(checked, 0u) << spec;
  }
}

TEST(PprServerDynamicTest, NodeResizeUnderServingStaysEpochConsistent) {
  // Graph resize under load: batches that add and remove nodes apply
  // while clients stream queries. Every served result must be sized for
  // exactly one boundary snapshot's node count, stamp that boundary's
  // epoch, and match its dense solution within the advertised bound —
  // no query may ever observe a half-resized dimension.
  constexpr NodeId kSource = 1;
  Rng rng(47);
  Graph graph = ErdosRenyi(30, 3.0, rng);
  const NodeId n0 = graph.num_nodes();

  std::vector<UpdateBatch> batches(4);
  batches[0].Insert(0, 7).AddNode().Insert(n0, kSource).Insert(2, n0);
  batches[1].RemoveNode(5).Insert(kSource, n0);
  batches[2].AddNode().Insert(n0 + 1, n0).Insert(0, n0 + 1);
  batches[3].RemoveNode(n0);

  std::map<uint64_t, std::vector<double>> exact;
  {
    DynamicGraph replay(graph);
    exact[0] = ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    for (const UpdateBatch& batch : batches) {
      ASSERT_TRUE(replay.Apply(batch).ok());
      exact[replay.epoch()] =
          ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    }
    ASSERT_EQ(replay.num_nodes(), n0 + 2);
  }

  for (const char* spec : {"dynfwdpush:rmax=1e-9", "dynfora:eps=0.3",
                           "dynspeedppr:eps=0.3"}) {
    PprServer server({.workers = 3, .contexts = 2});
    ASSERT_TRUE(server.AddSolver(spec, graph).ok()) << spec;
    ASSERT_TRUE(server.Start().ok()) << spec;

    std::atomic<bool> done{false};
    std::vector<std::vector<PprFuture>> futures(2);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < futures.size(); ++c) {
      clients.emplace_back([&, c] {
        PprQuery query;
        query.source = kSource;
        while (!done.load(std::memory_order_relaxed)) {
          auto submitted = server.Submit(query);
          if (submitted.ok()) {
            futures[c].push_back(std::move(submitted).ValueOrDie());
          }
          std::this_thread::yield();
        }
      });
    }

    for (const UpdateBatch& batch : batches) {
      auto applied = server.ApplyUpdates(batch);
      ASSERT_TRUE(applied.ok()) << spec << ": " << applied.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
    for (std::thread& t : clients) t.join();
    server.Stop();

    size_t checked = 0;
    for (const auto& client_futures : futures) {
      for (const PprFuture& future : client_futures) {
        PprResult result;
        Status status = future.Get(&result);
        if (!status.ok()) continue;  // shutdown race rejections only
        auto it = exact.find(result.epoch);
        ASSERT_NE(it, exact.end())
            << spec << ": result stamped epoch " << result.epoch
            << ", which is not a batch boundary — a torn resize leaked";
        ASSERT_EQ(result.scores.size(), it->second.size())
            << spec << " epoch " << result.epoch
            << ": score vector sized for a different epoch's graph";
        ASSERT_LT(L1Distance(result.scores, it->second),
                  result.l1_bound + 1e-11)
            << spec << " epoch " << result.epoch;
        checked++;
      }
    }
    EXPECT_GT(checked, 0u) << spec;
  }
}

TEST(PprServerDynamicTest, UpdatesInvalidateWarmPoolContexts) {
  // After an applied batch the warm contexts must not trust their
  // recorded support: the pool invalidates each once, costing exactly
  // one full assign per context on its next checkout, after which
  // sparse resets resume.
  Rng rng(43);
  Graph graph = ErdosRenyi(30, 3.0, rng);
  PprServer server({.workers = 1, .contexts = 1});
  ASSERT_TRUE(server.AddSolver("fwdpush", graph).ok());
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-8", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> warmup(4);
  std::vector<PprResult> results;
  ASSERT_TRUE(server.SolveBatch(warmup, &results).ok());
  const uint64_t warm_assigns = server.context_pool().TotalFullAssigns();

  // Steady state: more queries, no new full assigns.
  ASSERT_TRUE(server.SolveBatch(warmup, &results).ok());
  EXPECT_EQ(server.context_pool().TotalFullAssigns(), warm_assigns);

  UpdateBatch batch;
  batch.Insert(0, 9);
  ASSERT_TRUE(server.ApplyUpdates(batch, "dynfwdpush:rmax=1e-8").ok());

  ASSERT_TRUE(server.SolveBatch(warmup, &results).ok());
  const uint64_t after_update = server.context_pool().TotalFullAssigns();
  EXPECT_GT(after_update, warm_assigns) << "epoch change must invalidate";

  // Invalidation is once per epoch, not per query.
  ASSERT_TRUE(server.SolveBatch(warmup, &results).ok());
  EXPECT_EQ(server.context_pool().TotalFullAssigns(), after_update);
  server.Stop();
}

}  // namespace
}  // namespace ppr
