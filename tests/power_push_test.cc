#include "core/power_push.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/power_iteration.h"
#include "test_util.h"

namespace ppr {
namespace {

using testing::ExactPprDense;
using testing::Sum;

TEST(PowerPushTest, MeetsLambdaGuaranteeOnDeadEndFreeGraphs) {
  for (auto& tc : testing::SmallGraphZoo()) {
    if (tc.graph.CountDeadEnds() > 0) continue;
    PowerPushOptions options;
    options.lambda = 1e-8;
    PprEstimate estimate;
    SolveStats stats = PowerPush(tc.graph, 0, options, &estimate);
    EXPECT_LE(stats.final_rsum, options.lambda) << tc.name;
  }
}

TEST(PowerPushTest, RelaxedGuaranteeWithDeadEnds) {
  for (auto& tc : testing::SmallGraphZoo()) {
    const double dead = tc.graph.CountDeadEnds();
    if (dead == 0) continue;
    PowerPushOptions options;
    options.lambda = 1e-8;
    PprEstimate estimate;
    SolveStats stats = PowerPush(tc.graph, 0, options, &estimate);
    const double m = static_cast<double>(tc.graph.num_edges());
    EXPECT_LE(stats.final_rsum, options.lambda * (1.0 + dead / m) + 1e-18)
        << tc.name;
  }
}

TEST(PowerPushTest, MatchesDenseExactSolve) {
  for (auto& tc : testing::SmallGraphZoo()) {
    PowerPushOptions options;
    options.lambda = 1e-10;
    PprEstimate estimate;
    PowerPush(tc.graph, 0, options, &estimate);
    std::vector<double> exact = ExactPprDense(tc.graph, 0, options.alpha);
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-8)
          << tc.name << " v=" << v;
    }
  }
}

TEST(PowerPushTest, AgreesWithPowerIterationWithinTwoLambda) {
  for (auto& tc : testing::SmallGraphZoo()) {
    const double lambda = 1e-9;
    PowerPushOptions pp_options;
    pp_options.lambda = lambda;
    PprEstimate pp;
    PowerPush(tc.graph, 0, pp_options, &pp);

    PowerIterationOptions pi_options;
    pi_options.lambda = lambda;
    PprEstimate pi;
    PowerIteration(tc.graph, 0, pi_options, &pi);

    double l1 = 0.0;
    for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
      l1 += std::abs(pp.reserve[v] - pi.reserve[v]);
    }
    EXPECT_LE(l1, 3 * lambda) << tc.name;
  }
}

TEST(PowerPushTest, MassConservation) {
  for (auto& tc : testing::SmallGraphZoo()) {
    PowerPushOptions options;
    options.lambda = 1e-9;
    PprEstimate estimate;
    PowerPush(tc.graph, 2 % tc.graph.num_nodes(), options, &estimate);
    EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-10)
        << tc.name;
  }
}

TEST(PowerPushTest, AblationScanOnlyStillCorrect) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = ExactPprDense(g, 0, 0.2);
  PowerPushOptions options;
  options.lambda = 1e-10;
  options.use_queue_phase = false;
  PprEstimate estimate;
  PowerPush(g, 0, options, &estimate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-8);
  }
}

TEST(PowerPushTest, AblationNoEpochsStillCorrect) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  std::vector<double> exact = ExactPprDense(g, 0, 0.2);
  PowerPushOptions options;
  options.lambda = 1e-10;
  options.use_epochs = false;
  PprEstimate estimate;
  PowerPush(g, 0, options, &estimate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-8);
  }
}

TEST(PowerPushTest, QueueOnlySufficesOnTinyGraphs) {
  // With a huge scan threshold the queue phase runs to completion and
  // the scan phase never triggers; result must be unchanged.
  Graph g = PaperExampleGraph();
  PowerPushOptions options;
  options.lambda = 1e-10;
  options.scan_threshold_fraction = 100.0;
  PprEstimate estimate;
  PowerPush(g, 0, options, &estimate);
  std::vector<double> exact = ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(estimate.reserve[v], exact[v], 1e-9);
  }
}

TEST(PowerPushTest, EpochCountIsConfigurable) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  for (int epochs : {1, 2, 8, 16}) {
    PowerPushOptions options;
    options.lambda = 1e-9;
    options.epoch_num = epochs;
    PprEstimate estimate;
    SolveStats stats = PowerPush(g, 0, options, &estimate);
    EXPECT_LE(stats.final_rsum, options.lambda * 1.01) << epochs;
  }
}

TEST(PowerPushTest, PaperLambdaIsMinOfTenToMinusEightAndOneOverM) {
  Graph small = PaperExampleGraph();  // m = 13
  EXPECT_DOUBLE_EQ(PaperLambda(small), 1e-8);
  // A graph with more than 1e8 edges would flip to 1/m; emulate by
  // checking the formula directly on a synthetic value.
  EXPECT_DOUBLE_EQ(std::min(1e-8, 1.0 / 13.0), PaperLambda(small));
}

TEST(PowerPushTest, TraceDecaysExponentially) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  ConvergenceTrace trace(2 * g.num_edges());
  PowerPushOptions options;
  options.lambda = 1e-10;
  PprEstimate estimate;
  PowerPush(g, 0, options, &estimate, &trace);
  ASSERT_GE(trace.points().size(), 2u);
  EXPECT_LE(trace.points().back().rsum, options.lambda * 1.01);
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_LE(trace.points()[i].rsum, trace.points()[i - 1].rsum + 1e-15);
  }
}

TEST(PowerPushTest, WorkBoundedByTheorem) {
  for (auto& tc : testing::SmallGraphZoo()) {
    const double m = static_cast<double>(tc.graph.num_edges());
    PowerPushOptions options;
    options.lambda = 1e-8;
    PprEstimate estimate;
    SolveStats stats = PowerPush(tc.graph, 0, options, &estimate);
    const double bound =
        (m / options.alpha) * std::log(1.0 / options.lambda) + 2 * m;
    EXPECT_LE(static_cast<double>(stats.edge_pushes), bound) << tc.name;
  }
}

TEST(PowerPushDeathTest, RejectsBadArguments) {
  Graph g = PaperExampleGraph();
  PprEstimate estimate;
  PowerPushOptions options;
  options.lambda = 2.0;
  EXPECT_DEATH(PowerPush(g, 0, options, &estimate), "Check failed");
  options.lambda = 1e-8;
  options.epoch_num = 0;
  EXPECT_DEATH(PowerPush(g, 0, options, &estimate), "Check failed");
}

}  // namespace
}  // namespace ppr
