#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "util/rng.h"

namespace ppr {
namespace {

TEST(PaperExampleTest, MatchesFigureOne) {
  Graph g = PaperExampleGraph();
  ASSERT_EQ(g.num_nodes(), 5u);
  ASSERT_EQ(g.num_edges(), 13u);
  // Out-degrees: d(v1)=2, d(v2)=4, d(v3)=2, d(v4)=3, d(v5)=2.
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 4u);
  EXPECT_EQ(g.OutDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(3), 3u);
  EXPECT_EQ(g.OutDegree(4), 2u);
  // Spot-check the transition structure of Figure 1's matrix P.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_TRUE(g.HasEdge(4, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(4, 0));
}

TEST(DeterministicTopologies, PathHasOneDeadEnd) {
  Graph g = PathGraph(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.CountDeadEnds(), 1u);
  EXPECT_EQ(g.OutDegree(9), 0u);
}

TEST(DeterministicTopologies, CycleIsRegular) {
  Graph g = CycleGraph(12);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(g.OutDegree(v), 1u);
  EXPECT_TRUE(g.HasEdge(11, 0));
}

TEST(DeterministicTopologies, StarIsBidirected) {
  Graph g = StarGraph(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 18u);  // 9 undirected edges, doubled
  EXPECT_EQ(g.OutDegree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.OutDegree(v), 1u);
}

TEST(DeterministicTopologies, CompleteGraphHasAllPairs) {
  Graph g = CompleteGraph(6);
  EXPECT_EQ(g.num_edges(), 30u);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(g.OutDegree(u), 5u);
    EXPECT_FALSE(g.HasEdge(u, u));
  }
}

TEST(DeterministicTopologies, GridDegreesAreLocal) {
  Graph g = GridGraph(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  // Undirected grid edges: 4*(5-1) + 5*(4-1) = 31, doubled.
  EXPECT_EQ(g.num_edges(), 62u);
  // A corner has degree 2, an interior node degree 4.
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(6), 4u);  // row 1, col 1
}

TEST(ErdosRenyiTest, HitsTargetEdgeCount) {
  Rng rng(17);
  Graph g = ErdosRenyi(1000, 8.0, rng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 8000.0, 400.0);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng rng1(99);
  Rng rng2(99);
  Graph a = ErdosRenyi(500, 4.0, rng1);
  Graph b = ErdosRenyi(500, 4.0, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.out_targets(), b.out_targets());
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
}

TEST(BarabasiAlbertTest, IsSymmetricAndHeavyTailed) {
  Rng rng(3);
  Graph g = BarabasiAlbert(2000, 3, rng);
  g.BuildInAdjacency();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(g.OutDegree(v), g.InDegree(v)) << "BA must be symmetric";
  }
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.dead_ends, 0u);
  // Preferential attachment: the top 1% must hold well above a uniform
  // share (1%) of edge endpoints.
  EXPECT_GT(stats.top1pct_degree_share, 0.05);
  EXPECT_GT(stats.max_out_degree, 50u);
}

TEST(BarabasiAlbertTest, AverageDegreeNearTwiceAttachment) {
  Rng rng(4);
  Graph g = BarabasiAlbert(3000, 4, rng);
  // Each arrival adds 4 undirected edges -> m/n approaches 8 directed.
  EXPECT_NEAR(g.AverageDegree(), 8.0, 0.8);
}

TEST(ChungLuTest, MatchesTargetDegreeAndTail) {
  Rng rng(11);
  Graph g = ChungLuPowerLaw(5000, 12.0, 2.5, rng);
  EXPECT_NEAR(g.AverageDegree(), 12.0, 1.0);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_GT(stats.top1pct_degree_share, 0.08) << "expected heavy tail";
}

TEST(ChungLuTest, SymmetrizedVariantIsUndirected) {
  Rng rng(12);
  Graph g = ChungLuPowerLaw(2000, 10.0, 2.5, rng, /*symmetrize=*/true);
  g.BuildInAdjacency();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(g.OutDegree(v), g.InDegree(v));
  }
  EXPECT_EQ(g.CountDeadEnds(), 0u);
  EXPECT_NEAR(g.AverageDegree(), 10.0, 1.5);
}

TEST(ChungLuTest, DirectedHubsDifferBetweenDirections) {
  Rng rng(13);
  Graph g = ChungLuPowerLaw(3000, 10.0, 2.3, rng);
  g.BuildInAdjacency();
  // Out-hub and in-hub should usually be different nodes thanks to the
  // independent permutations.
  NodeId out_hub = 0;
  NodeId in_hub = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(out_hub)) out_hub = v;
    if (g.InDegree(v) > g.InDegree(in_hub)) in_hub = v;
  }
  EXPECT_NE(out_hub, in_hub);
}

TEST(CopyModelWebTest, EveryNodeHasOutDegree) {
  Rng rng(21);
  Graph g = CopyModelWeb(2000, 8, 0.55, rng);
  EXPECT_EQ(g.CountDeadEnds(), 0u);
  // Duplicate targets get deduplicated, so out-degree is in [1, 8].
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_GE(g.OutDegree(v), 1u);
    ASSERT_LE(g.OutDegree(v), 8u);
  }
}

TEST(CopyModelWebTest, CopyingSkewsInDegrees) {
  Rng rng(22);
  Graph g = CopyModelWeb(5000, 8, 0.55, rng);
  g.BuildInAdjacency();
  NodeId max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Uniform attachment would give max in-degree ~ O(log n) * 8; the copy
  // model concentrates far more.
  EXPECT_GT(max_in, 100u);
}

TEST(GeneratorsDeathTest, RejectBadArguments) {
  Rng rng(1);
  EXPECT_DEATH(PathGraph(1), "Check failed");
  EXPECT_DEATH(ChungLuPowerLaw(100, 5.0, 1.5, rng), "exponent");
  EXPECT_DEATH(BarabasiAlbert(3, 3, rng), "Check failed");
}

}  // namespace
}  // namespace ppr
