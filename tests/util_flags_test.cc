#include "util/flags.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

char** MakeArgv(std::vector<std::string>& storage) {
  static std::vector<char*> pointers;
  pointers.clear();
  for (auto& s : storage) pointers.push_back(s.data());
  return pointers.data();
}

TEST(FlagParserTest, ParsesAllKinds) {
  std::string name;
  double ratio = 0.0;
  uint64_t count = 0;
  bool verbose = false;
  FlagParser parser;
  parser.AddString("name", &name, "a name");
  parser.AddDouble("ratio", &ratio, "a ratio");
  parser.AddUint64("count", &count, "a count");
  parser.AddBool("verbose", &verbose, "a switch");

  std::vector<std::string> args = {"prog", "--name=abc", "--ratio=0.25",
                                   "--count=42", "--verbose"};
  ASSERT_TRUE(parser.Parse(static_cast<int>(args.size()), MakeArgv(args)).ok());
  EXPECT_EQ(name, "abc");
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(count, 42u);
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, CollectsPositionalsInOrder) {
  FlagParser parser;
  bool flag = false;
  parser.AddBool("x", &flag, "");
  std::vector<std::string> args = {"prog", "first", "--x", "second"};
  ASSERT_TRUE(parser.Parse(static_cast<int>(args.size()), MakeArgv(args)).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "first");
  EXPECT_EQ(parser.positional()[1], "second");
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser;
  std::vector<std::string> args = {"prog", "--nope=1"};
  Status s = parser.Parse(static_cast<int>(args.size()), MakeArgv(args));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--nope"), std::string::npos);
}

TEST(FlagParserTest, MalformedValueIsError) {
  double d = 0.0;
  uint64_t u = 0;
  FlagParser parser;
  parser.AddDouble("d", &d, "");
  parser.AddUint64("u", &u, "");
  std::vector<std::string> a1 = {"prog", "--d=abc"};
  EXPECT_FALSE(parser.Parse(static_cast<int>(a1.size()), MakeArgv(a1)).ok());
  std::vector<std::string> a2 = {"prog", "--u=-3"};
  EXPECT_FALSE(parser.Parse(static_cast<int>(a2.size()), MakeArgv(a2)).ok());
  std::vector<std::string> a3 = {"prog", "--d"};
  EXPECT_FALSE(parser.Parse(static_cast<int>(a3.size()), MakeArgv(a3)).ok());
}

TEST(FlagParserTest, BoolAcceptsExplicitValue) {
  bool flag = true;
  FlagParser parser;
  parser.AddBool("flag", &flag, "");
  std::vector<std::string> args = {"prog", "--flag=false"};
  ASSERT_TRUE(parser.Parse(static_cast<int>(args.size()), MakeArgv(args)).ok());
  EXPECT_FALSE(flag);
  std::vector<std::string> bad = {"prog", "--flag=maybe"};
  EXPECT_FALSE(parser.Parse(static_cast<int>(bad.size()), MakeArgv(bad)).ok());
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser parser;
  double d = 0;
  parser.AddDouble("alpha", &d, "teleport probability");
  std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("teleport probability"), std::string::npos);
}

}  // namespace
}  // namespace ppr
