#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) equal++;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBound)]++;
  for (int c : counts) {
    // Expected 10000 per bucket; 5-sigma ~ 475.
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  for (double p : {0.1, 0.2, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(hits / 100000.0, p, 0.01);
  }
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  // E[Geometric(p) failures-before-success] = (1-p)/p.
  Rng rng(13);
  for (double p : {0.2, 0.5, 0.8}) {
    double sum = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) sum += rng.NextGeometric(p);
    EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.05) << "p=" << p;
  }
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  // The child stream must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) equal++;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  // Regression pin: the same seed must produce the same stream across
  // library versions, or stored experiment seeds lose meaning.
  SplitMix64 sm(0);
  uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace ppr
