#include "core/pagerank.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(PageRankTest, SumsToOne) {
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> rank = PageRank(tc.graph);
    EXPECT_NEAR(testing::Sum(rank), 1.0, 1e-9) << tc.name;
  }
}

TEST(PageRankTest, UniformOnCycle) {
  Graph g = CycleGraph(20);
  std::vector<double> rank = PageRank(g);
  for (double r : rank) EXPECT_NEAR(r, 0.05, 1e-9);
}

TEST(PageRankTest, UniformOnCompleteGraph) {
  Graph g = CompleteGraph(12);
  std::vector<double> rank = PageRank(g);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 12, 1e-9);
}

TEST(PageRankTest, HubDominatesStar) {
  Graph g = StarGraph(50);
  std::vector<double> rank = PageRank(g);
  // The center receives mass from all 49 leaves.
  EXPECT_GT(rank[0], 0.3);
  for (NodeId v = 1; v < 50; ++v) {
    EXPECT_LT(rank[v], rank[0]);
    EXPECT_NEAR(rank[v], rank[1], 1e-9);  // leaves are symmetric
  }
}

TEST(PageRankTest, MatchesAverageOfPprRows) {
  // PageRank = (1/n) sum_s pi_s when dead ends are absent (the
  // dead-end conventions differ otherwise).
  Graph g = PaperExampleGraph();
  std::vector<double> average(g.num_nodes(), 0.0);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    std::vector<double> row = testing::ExactPprDense(g, s, 0.2);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      average[v] += row[v] / g.num_nodes();
    }
  }
  std::vector<double> rank = PageRank(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(rank[v], average[v], 1e-8) << "v=" << v;
  }
}

TEST(PageRankTest, DanglingMassRedistributed) {
  Graph g = PathGraph(5);  // node 4 dangles
  SolveStats stats;
  std::vector<double> rank = PageRank(g, {}, &stats);
  EXPECT_NEAR(testing::Sum(rank), 1.0, 1e-9);
  for (double r : rank) EXPECT_GT(r, 0.0);
  EXPECT_GT(stats.iterations, 0u);
}

TEST(PageRankTest, RanksFollowInDegreeOnScaleFree) {
  Rng rng(8);
  Graph g = ChungLuPowerLaw(2000, 8.0, 2.3, rng);
  g.BuildInAdjacency();
  std::vector<double> rank = PageRank(g);
  // The max-in-degree node should land in the global top 1%.
  NodeId in_hub = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) > g.InDegree(in_hub)) in_hub = v;
  }
  auto top = TopK(rank, g.num_nodes() / 100);
  EXPECT_NE(std::find(top.begin(), top.end(), in_hub), top.end());
}

TEST(PageRankTest, StatsReported) {
  Graph g = CycleGraph(16);
  SolveStats stats;
  PageRankOptions options;
  options.lambda = 1e-6;
  PageRank(g, options, &stats);
  EXPECT_GT(stats.push_operations, 0u);
  EXPECT_LE(stats.final_rsum, options.lambda);
}

}  // namespace
}  // namespace ppr
