#include "core/power_iteration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

using testing::ExactPprDense;
using testing::Sum;

TEST(PowerIterationTest, MatchesDenseExactSolveOnPaperExample) {
  Graph g = PaperExampleGraph();
  PowerIterationOptions options;
  options.lambda = 1e-12;
  PprEstimate estimate;
  PowerIteration(g, /*source=*/0, options, &estimate);
  std::vector<double> exact = ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(estimate.reserve[v], exact[v], 1e-11) << "v=" << v;
  }
}

TEST(PowerIterationTest, ErrorDecayIsExactlyGeometric) {
  // Equation (6): after j iterations the ℓ1 error is (1−α)^j exactly
  // (no dead ends in a cycle).
  Graph g = CycleGraph(32);
  PowerIterationOptions options;
  options.alpha = 0.2;
  options.lambda = 1e-6;
  PprEstimate estimate;
  SolveStats stats = PowerIteration(g, 0, options, &estimate);
  EXPECT_NEAR(stats.final_rsum,
              std::pow(1.0 - options.alpha, stats.iterations), 1e-12);
  EXPECT_LE(stats.final_rsum, options.lambda);
  // It must not overshoot: one fewer iteration would exceed λ.
  EXPECT_GT(std::pow(1.0 - options.alpha, stats.iterations - 1),
            options.lambda);
}

TEST(PowerIterationTest, MassConservationThroughout) {
  Graph g = PaperExampleGraph();
  PowerIterationOptions options;
  options.lambda = 1e-10;
  PprEstimate estimate;
  PowerIteration(g, 1, options, &estimate);
  EXPECT_NEAR(Sum(estimate.reserve) + Sum(estimate.residue), 1.0, 1e-12);
}

TEST(PowerIterationTest, ReserveIsUnderestimate) {
  Graph g = PaperExampleGraph();
  std::vector<double> exact = ExactPprDense(g, 2, 0.2);
  PowerIterationOptions options;
  options.lambda = 1e-4;  // stop early on purpose
  PprEstimate estimate;
  PowerIteration(g, 2, options, &estimate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(estimate.reserve[v], exact[v] + 1e-12);
  }
}

TEST(PowerIterationTest, DeadEndMassReturnsToSource) {
  // Path 0->1->2: node 2 is a dead end whose mass must flow back to the
  // source, keeping the distribution a probability vector.
  Graph g = PathGraph(3);
  PowerIterationOptions options;
  options.lambda = 1e-12;
  PprEstimate estimate;
  PowerIteration(g, 0, options, &estimate);
  EXPECT_NEAR(Sum(estimate.reserve), 1.0, 1e-10);
  std::vector<double> exact = ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(estimate.reserve[v], exact[v], 1e-10);
  }
}

TEST(PowerIterationTest, SourceSelfProbabilityAtLeastAlpha) {
  // The walk stops at step 0 with probability α, so π(s,s) ≥ α.
  for (auto& tc : testing::SmallGraphZoo()) {
    PowerIterationOptions options;
    options.lambda = 1e-10;
    PprEstimate estimate;
    PowerIteration(tc.graph, 0, options, &estimate);
    EXPECT_GE(estimate.reserve[0], 0.2 - 1e-12) << tc.name;
  }
}

TEST(PowerIterationTest, IterationCountMatchesTheory) {
  Graph g = CycleGraph(8);
  PowerIterationOptions options;
  options.alpha = 0.2;
  options.lambda = 1e-8;
  PprEstimate estimate;
  SolveStats stats = PowerIteration(g, 0, options, &estimate);
  // Need (0.8)^j <= 1e-8  =>  j = ceil(8 ln 10 / ln 1.25) = 83.
  EXPECT_EQ(stats.iterations, 83u);
}

TEST(PowerIterationTest, AlphaControlsLocality) {
  // Larger alpha stops walks sooner: more mass at the source.
  Graph g = CycleGraph(64);
  PprEstimate low;
  PprEstimate high;
  PowerIterationOptions options;
  options.lambda = 1e-10;
  options.alpha = 0.1;
  PowerIteration(g, 0, options, &low);
  options.alpha = 0.5;
  PowerIteration(g, 0, options, &high);
  EXPECT_GT(high.reserve[0], low.reserve[0]);
}

TEST(PowerIterationTest, TraceRecordsMonotoneDecay) {
  Graph g = testing::SmallGraphZoo()[6].graph;  // er_100
  ConvergenceTrace trace(/*interval_updates=*/4 * g.num_edges());
  PowerIterationOptions options;
  options.lambda = 1e-8;
  PprEstimate estimate;
  PowerIteration(g, 0, options, &estimate, &trace);
  ASSERT_GE(trace.points().size(), 2u);
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_LE(trace.points()[i].rsum, trace.points()[i - 1].rsum + 1e-15);
    EXPECT_GE(trace.points()[i].updates, trace.points()[i - 1].updates);
  }
  EXPECT_LE(trace.points().back().rsum, options.lambda);
}

TEST(PowerIterationTest, MaxIterationsCapRespected) {
  Graph g = CycleGraph(8);
  PowerIterationOptions options;
  options.lambda = 1e-300;  // unreachable
  options.max_iterations = 10;
  PprEstimate estimate;
  SolveStats stats = PowerIteration(g, 0, options, &estimate);
  EXPECT_EQ(stats.iterations, 10u);
}

TEST(PowerIterationDeathTest, RejectsBadArguments) {
  Graph g = CycleGraph(4);
  PprEstimate estimate;
  PowerIterationOptions options;
  options.lambda = 0.0;
  EXPECT_DEATH(PowerIteration(g, 0, options, &estimate), "Check failed");
  options.lambda = 1e-8;
  EXPECT_DEATH(PowerIteration(g, 4, options, &estimate), "Check failed");
}

}  // namespace
}  // namespace ppr
