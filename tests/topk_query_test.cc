#include "eval/topk_query.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(TopKQueryTest, RecoversExactTopKOnSmallGraph) {
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  TopKOptions options;
  Rng rng(1);
  TopKResult result = TopKPpr(g, 0, 10, options, rng);
  ASSERT_EQ(result.nodes.size(), 10u);
  // Compare as sets; near-ties may swap order legitimately.
  std::vector<double> estimate(g.num_nodes(), 0.0);
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    estimate[result.nodes[i]] = result.scores[i];
  }
  EXPECT_GE(PrecisionAtK(estimate, exact, 10), 0.9);
}

TEST(TopKQueryTest, ScoresAreDecreasing) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  TopKOptions options;
  Rng rng(2);
  TopKResult result = TopKPpr(g, 0, 15, options, rng);
  for (size_t i = 1; i < result.scores.size(); ++i) {
    ASSERT_GE(result.scores[i - 1], result.scores[i]);
  }
}

TEST(TopKQueryTest, KClampsToGraphSize) {
  Graph g = PaperExampleGraph();
  TopKOptions options;
  Rng rng(3);
  TopKResult result = TopKPpr(g, 0, 100, options, rng);
  EXPECT_EQ(result.nodes.size(), 5u);
}

TEST(TopKQueryTest, StopsEarlyWhenStable) {
  // On a tiny graph the first two rounds already agree; refinement must
  // stop well above the epsilon floor.
  Graph g = PaperExampleGraph();
  TopKOptions options;
  options.initial_epsilon = 0.5;
  options.min_epsilon = 0.001;
  Rng rng(4);
  TopKResult result = TopKPpr(g, 0, 3, options, rng);
  EXPECT_GT(result.final_epsilon, options.min_epsilon);
  EXPECT_LE(result.rounds, 4);
}

TEST(TopKQueryTest, IndexVariantMatchesQuality) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  Rng index_rng(5);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  TopKOptions options;
  Rng rng(6);
  TopKResult result = TopKPpr(g, 0, 10, options, rng, &index);
  std::vector<double> estimate(g.num_nodes(), 0.0);
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    estimate[result.nodes[i]] = result.scores[i];
  }
  EXPECT_GE(PrecisionAtK(estimate, exact, 10), 0.9);
}

TEST(TopKQueryTest, SourceRanksFirstWhenDominant) {
  // pi(s,s) >= alpha dominates on sparse graphs.
  Graph g = CycleGraph(50);
  TopKOptions options;
  Rng rng(7);
  TopKResult result = TopKPpr(g, 17, 5, options, rng);
  EXPECT_EQ(result.nodes[0], 17u);
}

TEST(TopKQueryDeathTest, RejectsZeroK) {
  Graph g = PaperExampleGraph();
  TopKOptions options;
  Rng rng(8);
  EXPECT_DEATH(TopKPpr(g, 0, 0, options, rng), "Check failed");
}

// The fused batch driver returns exactly what per-source serial solves
// of the same spec would: same top-k ids, scores aligned with nodes.
TEST(TopKQueryTest, BatchDriverMatchesPerSourceSolves) {
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  constexpr size_t kK = 5;
  auto created =
      SolverRegistry::Global().Create("fwdpush:rmax=1e-7,batch=4");
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  ASSERT_TRUE(solver->Prepare(g).ok());

  const std::vector<NodeId> sources = {0, 3, 17, 42, 99};
  SolverContext batch_context;
  const std::vector<TopKResult> batched =
      TopKPprBatch(*solver->AsBatch(), batch_context, sources, kK);
  ASSERT_EQ(batched.size(), sources.size());

  SolverContext serial_context;
  for (size_t i = 0; i < sources.size(); ++i) {
    PprQuery query;
    query.source = sources[i];
    query.top_k = kK;
    PprResult expected;
    ASSERT_TRUE(solver->Solve(query, serial_context, &expected).ok());
    EXPECT_EQ(batched[i].nodes, expected.top_nodes) << "source " << sources[i];
    ASSERT_EQ(batched[i].scores.size(), kK);
    for (size_t j = 0; j < kK; ++j) {
      EXPECT_EQ(batched[i].scores[j], expected.scores[batched[i].nodes[j]]);
    }
  }
}

}  // namespace
}  // namespace ppr
