#include "eval/topk_query.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(TopKQueryTest, RecoversExactTopKOnSmallGraph) {
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  TopKOptions options;
  Rng rng(1);
  TopKResult result = TopKPpr(g, 0, 10, options, rng);
  ASSERT_EQ(result.nodes.size(), 10u);
  // Compare as sets; near-ties may swap order legitimately.
  std::vector<double> estimate(g.num_nodes(), 0.0);
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    estimate[result.nodes[i]] = result.scores[i];
  }
  EXPECT_GE(PrecisionAtK(estimate, exact, 10), 0.9);
}

TEST(TopKQueryTest, ScoresAreDecreasing) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  TopKOptions options;
  Rng rng(2);
  TopKResult result = TopKPpr(g, 0, 15, options, rng);
  for (size_t i = 1; i < result.scores.size(); ++i) {
    ASSERT_GE(result.scores[i - 1], result.scores[i]);
  }
}

TEST(TopKQueryTest, KClampsToGraphSize) {
  Graph g = PaperExampleGraph();
  TopKOptions options;
  Rng rng(3);
  TopKResult result = TopKPpr(g, 0, 100, options, rng);
  EXPECT_EQ(result.nodes.size(), 5u);
}

TEST(TopKQueryTest, StopsEarlyWhenStable) {
  // On a tiny graph the first two rounds already agree; refinement must
  // stop well above the epsilon floor.
  Graph g = PaperExampleGraph();
  TopKOptions options;
  options.initial_epsilon = 0.5;
  options.min_epsilon = 0.001;
  Rng rng(4);
  TopKResult result = TopKPpr(g, 0, 3, options, rng);
  EXPECT_GT(result.final_epsilon, options.min_epsilon);
  EXPECT_LE(result.rounds, 4);
}

TEST(TopKQueryTest, IndexVariantMatchesQuality) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  Rng index_rng(5);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  TopKOptions options;
  Rng rng(6);
  TopKResult result = TopKPpr(g, 0, 10, options, rng, &index);
  std::vector<double> estimate(g.num_nodes(), 0.0);
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    estimate[result.nodes[i]] = result.scores[i];
  }
  EXPECT_GE(PrecisionAtK(estimate, exact, 10), 0.9);
}

TEST(TopKQueryTest, SourceRanksFirstWhenDominant) {
  // pi(s,s) >= alpha dominates on sparse graphs.
  Graph g = CycleGraph(50);
  TopKOptions options;
  Rng rng(7);
  TopKResult result = TopKPpr(g, 17, 5, options, rng);
  EXPECT_EQ(result.nodes[0], 17u);
}

TEST(TopKQueryDeathTest, RejectsZeroK) {
  Graph g = PaperExampleGraph();
  TopKOptions options;
  Rng rng(8);
  EXPECT_DEATH(TopKPpr(g, 0, 0, options, rng), "Check failed");
}

}  // namespace
}  // namespace ppr
