#include "approx/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(ChernoffWalkCountTest, MatchesEquationTwelve) {
  // W = 2(2ε/3 + 2) log n / (ε² μ).
  const NodeId n = 1000;
  const double eps = 0.5;
  const double mu = 1.0 / n;
  const double expected =
      2.0 * (2.0 * eps / 3.0 + 2.0) * std::log(n) / (eps * eps * mu);
  EXPECT_EQ(ChernoffWalkCount(n, eps, mu),
            static_cast<uint64_t>(std::ceil(expected)));
}

TEST(ChernoffWalkCountTest, ShrinksWithLargerEpsilonAndMu) {
  EXPECT_GT(ChernoffWalkCount(1000, 0.1, 1e-3),
            ChernoffWalkCount(1000, 0.5, 1e-3));
  EXPECT_GT(ChernoffWalkCount(1000, 0.5, 1e-4),
            ChernoffWalkCount(1000, 0.5, 1e-3));
}

TEST(ApproxOptionsTest, ResolvedMuDefaultsToOneOverN) {
  ApproxOptions options;
  EXPECT_DOUBLE_EQ(options.ResolvedMu(100), 0.01);
  options.mu = 0.5;
  EXPECT_DOUBLE_EQ(options.ResolvedMu(100), 0.5);
}

TEST(MonteCarloTest, EstimateSumsToOne) {
  Graph g = PaperExampleGraph();
  ApproxOptions options;
  options.epsilon = 0.5;
  options.mu = 0.05;  // keep W moderate for the test
  Rng rng(3);
  std::vector<double> estimate;
  SolveStats stats = MonteCarlo(g, 0, options, rng, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-9);
  EXPECT_GT(stats.random_walks, 0u);
}

TEST(MonteCarloTest, SatisfiesRelativeErrorGuarantee) {
  Graph g = PaperExampleGraph();
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.3;
  Rng rng(41);
  std::vector<double> estimate;
  MonteCarlo(g, 0, options, rng, &estimate);
  // Every node on this 5-node graph has π >= 1/n; the guarantee applies
  // to all of them.
  EXPECT_LE(MaxRelativeError(estimate, exact, options.ResolvedMu(5)),
            options.epsilon);
}

TEST(MonteCarloTest, WalkCountMatchesFormula) {
  Graph g = CycleGraph(50);
  ApproxOptions options;
  options.epsilon = 0.5;
  options.mu = 0.02;
  Rng rng(7);
  std::vector<double> estimate;
  SolveStats stats = MonteCarlo(g, 0, options, rng, &estimate);
  EXPECT_EQ(stats.random_walks,
            ChernoffWalkCount(50, options.epsilon, options.mu));
}

TEST(MonteCarloTest, TighterEpsilonImprovesAccuracyOnAverage) {
  Graph g = testing::SmallGraphZoo()[7].graph;  // ba_120
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions loose;
  loose.epsilon = 0.8;
  loose.mu = 1e-2;
  ApproxOptions tight;
  tight.epsilon = 0.2;
  tight.mu = 1e-2;
  double loose_err = 0.0;
  double tight_err = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng_l(seed);
    Rng rng_t(seed + 100);
    std::vector<double> e;
    MonteCarlo(g, 0, loose, rng_l, &e);
    loose_err += L1Distance(e, exact);
    MonteCarlo(g, 0, tight, rng_t, &e);
    tight_err += L1Distance(e, exact);
  }
  EXPECT_LT(tight_err, loose_err);
}

}  // namespace
}  // namespace ppr
