#include "approx/fora.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(ForaRmaxTest, BalancesTheTwoPhases) {
  Graph g = PaperExampleGraph();
  const uint64_t w = 1000;
  const double rmax = ForaRmax(g, w);
  // 1/rmax == m * rmax * W at the balance point.
  EXPECT_NEAR(1.0 / rmax,
              static_cast<double>(g.num_edges()) * rmax * w, 1e-6);
}

TEST(ForaTest, EstimateSumsToApproximatelyOne) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  ApproxOptions options;
  options.epsilon = 0.5;
  Rng rng(1);
  std::vector<double> estimate;
  Fora(g, 0, options, rng, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-6);
}

TEST(ForaTest, SatisfiesRelativeErrorGuarantee) {
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> exact = testing::ExactPprDense(tc.graph, 0, 0.2);
    ApproxOptions options;
    options.epsilon = 0.5;
    Rng rng(17);
    std::vector<double> estimate;
    Fora(tc.graph, 0, options, rng, &estimate);
    const double mu = options.ResolvedMu(tc.graph.num_nodes());
    EXPECT_LE(MaxRelativeError(estimate, exact, mu), options.epsilon)
        << tc.name;
  }
}

TEST(ForaTest, UnbiasedOverSeeds) {
  // The mean over independent seeds converges to the truth (the MC phase
  // is unbiased given the push phase's deterministic part).
  Graph g = PaperExampleGraph();
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.5;
  std::vector<double> mean(g.num_nodes(), 0.0);
  constexpr int kRuns = 30;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng(run * 7919 + 1);
    std::vector<double> estimate;
    Fora(g, 0, options, rng, &estimate);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      mean[v] += estimate[v] / kRuns;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(mean[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(ForaTest, IndexedVariantAlsoMeetsGuarantee) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.5;
  const uint64_t w = ChernoffWalkCount(g.num_nodes(), options.epsilon,
                                       options.ResolvedMu(g.num_nodes()));
  Rng index_rng(5);
  WalkIndex index =
      WalkIndex::Build(g, options.alpha, WalkIndex::Sizing::kForaPlus, w,
                       index_rng);
  Rng rng(6);
  std::vector<double> estimate;
  SolveStats stats = Fora(g, 0, options, rng, &estimate, &index);
  EXPECT_LE(MaxRelativeError(estimate, exact,
                             options.ResolvedMu(g.num_nodes())),
            options.epsilon);
  // With a correctly-sized index no fresh walks should be needed:
  // walk_steps counts only simulated walks.
  EXPECT_EQ(stats.walk_steps, 0u);
}

TEST(ForaTest, UndersizedIndexToppedUpWithFreshWalks) {
  // Build the index for a large ε then query a smaller ε: some nodes
  // need more walks than stored — FORA+'s documented weakness.
  Graph g = testing::SmallGraphZoo()[7].graph;
  ApproxOptions big_eps;
  big_eps.epsilon = 0.5;
  const uint64_t w_small = ChernoffWalkCount(
      g.num_nodes(), big_eps.epsilon, big_eps.ResolvedMu(g.num_nodes()));
  Rng index_rng(8);
  WalkIndex index = WalkIndex::Build(
      g, 0.2, WalkIndex::Sizing::kForaPlus, w_small, index_rng);

  ApproxOptions small_eps;
  small_eps.epsilon = 0.1;
  Rng rng(9);
  std::vector<double> estimate;
  SolveStats stats = Fora(g, 0, small_eps, rng, &estimate, &index);
  EXPECT_GT(stats.walk_steps, 0u) << "shortfall must trigger fresh walks";
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  EXPECT_LE(MaxRelativeError(estimate, exact,
                             small_eps.ResolvedMu(g.num_nodes())),
            small_eps.epsilon);
}

TEST(ForaTest, PushPhaseDominatedByRmaxBudget) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  ApproxOptions options;
  options.epsilon = 0.5;
  Rng rng(10);
  std::vector<double> estimate;
  SolveStats stats = Fora(g, 0, options, rng, &estimate);
  const uint64_t w = ChernoffWalkCount(g.num_nodes(), options.epsilon,
                                       options.ResolvedMu(g.num_nodes()));
  // Classic FwdPush cost bound: edge pushes <= 1/rmax.
  EXPECT_LE(static_cast<double>(stats.edge_pushes),
            1.0 / ForaRmax(g, w) + 1.0);
}

TEST(ForaTest, WalkBudgetBoundedByRsumTimesWPlusN) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  ApproxOptions options;
  options.epsilon = 0.4;
  Rng rng(11);
  std::vector<double> estimate;
  SolveStats stats = Fora(g, 0, options, rng, &estimate);
  const uint64_t w = ChernoffWalkCount(g.num_nodes(), options.epsilon,
                                       options.ResolvedMu(g.num_nodes()));
  EXPECT_LE(stats.random_walks,
            static_cast<uint64_t>(stats.final_rsum * w) + g.num_nodes());
}

}  // namespace
}  // namespace ppr
