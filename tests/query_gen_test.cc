#include "eval/query_gen.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "graph/generators.h"

namespace ppr {
namespace {

TEST(QueryGenTest, ProducesDistinctInRangeSources) {
  Graph g = CycleGraph(100);
  auto sources = SampleQuerySources(g, 30, /*seed=*/7);
  ASSERT_EQ(sources.size(), 30u);
  std::vector<NodeId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (NodeId s : sources) EXPECT_LT(s, 100u);
}

TEST(QueryGenTest, DeterministicGivenSeed) {
  Graph g = CycleGraph(1000);
  EXPECT_EQ(SampleQuerySources(g, 10, 3), SampleQuerySources(g, 10, 3));
  EXPECT_NE(SampleQuerySources(g, 10, 3), SampleQuerySources(g, 10, 4));
}

TEST(QueryGenTest, ClampsToNodeCount) {
  Graph g = CycleGraph(5);
  auto sources = SampleQuerySources(g, 30, 1);
  EXPECT_EQ(sources.size(), 5u);
}

TEST(ExperimentHelpersTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0}), 4.0);  // upper median
}

TEST(ExperimentHelpersTest, PercentileNearestRank) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(Percentile(sample, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  // Never interpolates: the answer is always an observed value.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 10.0}, 75.0), 10.0);
}

TEST(ExperimentHelpersTest, TimePerQueryRunsEachSource) {
  std::vector<NodeId> sources = {1, 2, 3};
  int calls = 0;
  auto seconds = TimePerQuery(sources, [&](NodeId) { calls++; });
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(seconds.size(), 3u);
  for (double s : seconds) EXPECT_GE(s, 0.0);
}

TEST(ExperimentHelpersTest, BenchQueryCountEnvOverride) {
  ASSERT_EQ(setenv("PPR_BENCH_QUERIES", "2", 1), 0);
  EXPECT_EQ(BenchQueryCount(30), 2u);
  ASSERT_EQ(unsetenv("PPR_BENCH_QUERIES"), 0);
  EXPECT_EQ(BenchQueryCount(30), 30u);
}

}  // namespace
}  // namespace ppr
