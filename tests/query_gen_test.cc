#include "eval/query_gen.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "graph/generators.h"

namespace ppr {
namespace {

TEST(QueryGenTest, ProducesDistinctInRangeSources) {
  Graph g = CycleGraph(100);
  auto sources = SampleQuerySources(g, 30, /*seed=*/7);
  ASSERT_EQ(sources.size(), 30u);
  std::vector<NodeId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (NodeId s : sources) EXPECT_LT(s, 100u);
}

TEST(QueryGenTest, DeterministicGivenSeed) {
  Graph g = CycleGraph(1000);
  EXPECT_EQ(SampleQuerySources(g, 10, 3), SampleQuerySources(g, 10, 3));
  EXPECT_NE(SampleQuerySources(g, 10, 3), SampleQuerySources(g, 10, 4));
}

TEST(QueryGenTest, ClampsToNodeCount) {
  Graph g = CycleGraph(5);
  auto sources = SampleQuerySources(g, 30, 1);
  EXPECT_EQ(sources.size(), 5u);
}

TEST(UpdateStreamTest, GeneratesValidStreams) {
  // Every generated stream must pass DynamicGraph::Validate against its
  // base — the property that makes deletions safe to apply in order.
  Rng rng(2);
  Graph g = ErdosRenyi(50, 2.0, rng);
  for (double delete_fraction : {0.0, 0.3, 1.0}) {
    UpdateWorkloadOptions options;
    options.count = 120;
    options.delete_fraction = delete_fraction;
    options.seed = 5;
    UpdateBatch batch = GenerateUpdateStream(g, options).ValueOrDie();
    if (delete_fraction < 1.0) {
      EXPECT_EQ(batch.size(), options.count);
    } else {
      // A pure-delete stream may exhaust the deletable edges and stop
      // short (see ExhaustedPureDeleteStreamTerminatesShort).
      EXPECT_LE(batch.size(), options.count);
    }
    DynamicGraph dg(g);
    EXPECT_TRUE(dg.Apply(batch).ok()) << "deletes=" << delete_fraction;
  }
}

TEST(UpdateStreamTest, DeterministicGivenOptions) {
  Graph g = CycleGraph(40);
  UpdateWorkloadOptions options;
  options.count = 50;
  options.delete_fraction = 0.4;
  options.seed = 9;
  UpdateBatch first = GenerateUpdateStream(g, options).ValueOrDie();
  EXPECT_EQ(first.updates,
            GenerateUpdateStream(g, options).ValueOrDie().updates);
  options.seed = 10;
  EXPECT_NE(GenerateUpdateStream(g, options).ValueOrDie().updates,
            first.updates);
}

TEST(UpdateStreamTest, ExhaustedPureDeleteStreamTerminatesShort) {
  // delete_fraction=1 asking for more deletions than edges can ever
  // exist: the generator must terminate with the all-deletes stream it
  // could build — never pad with insertions, never loop.
  Graph g = CycleGraph(10);  // exactly 10 edges
  UpdateWorkloadOptions options;
  options.count = 50;
  options.delete_fraction = 1.0;
  options.seed = 3;
  UpdateBatch batch = GenerateUpdateStream(g, options).ValueOrDie();
  ASSERT_EQ(batch.size(), g.num_edges());
  for (const EdgeUpdate& up : batch.updates) {
    EXPECT_EQ(up.kind, UpdateKind::kDelete);
  }
  // The truncated stream is still valid and drains the graph entirely.
  DynamicGraph dg(g);
  ASSERT_TRUE(dg.Apply(batch).ok());
  EXPECT_EQ(dg.num_edges(), 0u);
}

TEST(UpdateStreamTest, RejectsDegenerateCountAndSkew) {
  Graph g = CycleGraph(10);
  UpdateWorkloadOptions options;
  options.seed = 3;

  options.count = 0;
  EXPECT_EQ(GenerateUpdateStream(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.count = UpdateWorkloadOptions::kMaxUpdateCount + 1;
  EXPECT_EQ(GenerateUpdateStream(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.count = 10;

  for (double skew : {-0.5, UpdateWorkloadOptions::kMaxUpdateSkew + 1.0,
                      std::numeric_limits<double>::quiet_NaN(),
                      std::numeric_limits<double>::infinity()}) {
    options.skew = skew;
    EXPECT_EQ(GenerateUpdateStream(g, options).status().code(),
              StatusCode::kInvalidArgument)
        << "skew=" << skew;
  }
  options.skew = 0.0;
  EXPECT_TRUE(GenerateUpdateStream(g, options).ok());
}

TEST(UpdateStreamTest, DeleteFractionShapesTheMix) {
  Rng rng(3);
  Graph g = ErdosRenyi(60, 3.0, rng);
  UpdateWorkloadOptions options;
  options.count = 200;
  options.seed = 7;

  options.delete_fraction = 0.0;
  for (const EdgeUpdate& up :
       GenerateUpdateStream(g, options).ValueOrDie().updates) {
    EXPECT_EQ(up.kind, UpdateKind::kInsert);
  }

  // All deletions while live edges remain (count stays below m; once
  // the live set drains the generator stops short, which
  // ExhaustedPureDeleteStreamTerminatesShort covers at count > m).
  options.delete_fraction = 1.0;
  options.count = g.num_edges() / 2;
  for (const EdgeUpdate& up :
       GenerateUpdateStream(g, options).ValueOrDie().updates) {
    EXPECT_EQ(up.kind, UpdateKind::kDelete);
  }
  options.count = 200;

  options.delete_fraction = 0.5;
  size_t deletes = 0;
  for (const EdgeUpdate& up :
       GenerateUpdateStream(g, options).ValueOrDie().updates) {
    if (up.kind == UpdateKind::kDelete) deletes++;
  }
  EXPECT_GT(deletes, 60u);
  EXPECT_LT(deletes, 140u);
}

TEST(UpdateStreamTest, SkewConcentratesEndpointsOnLowIds) {
  Graph g = CycleGraph(1000);
  UpdateWorkloadOptions options;
  options.count = 400;
  options.delete_fraction = 0.0;
  options.seed = 11;

  auto mean_endpoint = [&](double skew) {
    options.skew = skew;
    double sum = 0.0;
    size_t n = 0;
    for (const EdgeUpdate& up :
         GenerateUpdateStream(g, options).ValueOrDie().updates) {
      sum += up.u + up.v;
      n += 2;
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_LT(mean_endpoint(2.0), 0.6 * mean_endpoint(0.0));
}

TEST(ExperimentHelpersTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0}), 4.0);  // upper median
}

TEST(ExperimentHelpersTest, PercentileNearestRank) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(Percentile(sample, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  // Never interpolates: the answer is always an observed value.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 10.0}, 75.0), 10.0);
}

TEST(ExperimentHelpersTest, PercentileClampsOutOfRangeRequests) {
  std::vector<double> sample = {3.0, 1.0, 2.0};
  // Below 0 (and NaN) behave as p=0 — the minimum; above 100 as the
  // maximum. A slightly-off request degrades, never crashes.
  EXPECT_DOUBLE_EQ(Percentile(sample, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 250.0), 3.0);
  EXPECT_DOUBLE_EQ(
      Percentile(sample, std::numeric_limits<double>::quiet_NaN()), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({}, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 250.0), 0.0);
}

TEST(ExperimentHelpersTest, TimePerQueryRunsEachSource) {
  std::vector<NodeId> sources = {1, 2, 3};
  int calls = 0;
  auto seconds = TimePerQuery(sources, [&](NodeId) { calls++; });
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(seconds.size(), 3u);
  for (double s : seconds) EXPECT_GE(s, 0.0);
}

TEST(ExperimentHelpersTest, BenchQueryCountEnvOverride) {
  ASSERT_EQ(setenv("PPR_BENCH_QUERIES", "2", 1), 0);
  EXPECT_EQ(BenchQueryCount(30), 2u);
  ASSERT_EQ(unsetenv("PPR_BENCH_QUERIES"), 0);
  EXPECT_EQ(BenchQueryCount(30), 30u);
}

}  // namespace
}  // namespace ppr
