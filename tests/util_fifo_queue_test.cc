#include "util/fifo_queue.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(FifoQueueTest, StartsEmpty) {
  FifoQueue q(10);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(FifoQueueTest, FifoOrder) {
  FifoQueue q(10);
  EXPECT_TRUE(q.PushIfAbsent(3));
  EXPECT_TRUE(q.PushIfAbsent(1));
  EXPECT_TRUE(q.PushIfAbsent(7));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 3u);
  EXPECT_EQ(q.Pop(), 1u);
  EXPECT_EQ(q.Pop(), 7u);
  EXPECT_TRUE(q.empty());
}

TEST(FifoQueueTest, RejectsDuplicatesWhileQueued) {
  FifoQueue q(5);
  EXPECT_TRUE(q.PushIfAbsent(2));
  EXPECT_FALSE(q.PushIfAbsent(2));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Pop(), 2u);
  // After popping, the same id may be enqueued again (re-activation).
  EXPECT_TRUE(q.PushIfAbsent(2));
}

TEST(FifoQueueTest, ContainsTracksMembership) {
  FifoQueue q(5);
  EXPECT_FALSE(q.Contains(4));
  q.PushIfAbsent(4);
  EXPECT_TRUE(q.Contains(4));
  q.Pop();
  EXPECT_FALSE(q.Contains(4));
}

TEST(FifoQueueTest, FullUniverseFits) {
  constexpr uint32_t kN = 1000;
  FifoQueue q(kN);
  for (uint32_t v = 0; v < kN; ++v) ASSERT_TRUE(q.PushIfAbsent(v));
  EXPECT_EQ(q.size(), kN);
  for (uint32_t v = 0; v < kN; ++v) ASSERT_EQ(q.Pop(), v);
  EXPECT_TRUE(q.empty());
}

TEST(FifoQueueTest, WrapsAroundRing) {
  FifoQueue q(4);
  // Exercise the ring boundary repeatedly.
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(q.PushIfAbsent(round % 4));
    ASSERT_TRUE(q.PushIfAbsent((round + 1) % 4));
    ASSERT_EQ(q.Pop(), static_cast<uint32_t>(round % 4));
    ASSERT_EQ(q.Pop(), static_cast<uint32_t>((round + 1) % 4));
  }
  EXPECT_TRUE(q.empty());
}

TEST(FifoQueueTest, ClearEmptiesAndResetsMembership) {
  FifoQueue q(8);
  for (uint32_t v = 0; v < 8; ++v) q.PushIfAbsent(v);
  q.Clear();
  EXPECT_TRUE(q.empty());
  for (uint32_t v = 0; v < 8; ++v) {
    EXPECT_FALSE(q.Contains(v));
    EXPECT_TRUE(q.PushIfAbsent(v));
  }
}

TEST(FifoQueueTest, InterleavedPushPop) {
  FifoQueue q(100);
  uint32_t next_push = 0;
  uint32_t next_pop = 0;
  // Push two, pop one, repeatedly: size grows to 50 then drains.
  while (next_push < 100) {
    q.PushIfAbsent(next_push++);
    if (next_push < 100) q.PushIfAbsent(next_push++);
    ASSERT_EQ(q.Pop(), next_pop++);
  }
  while (!q.empty()) ASSERT_EQ(q.Pop(), next_pop++);
  EXPECT_EQ(next_pop, 100u);
}

}  // namespace
}  // namespace ppr
