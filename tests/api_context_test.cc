// Unit tests for the SolverContext sparse-reset workspace protocol.

#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/query.h"

namespace ppr {
namespace {

TEST(SolverContextTest, FirstAcquireDoesOneFullAssign) {
  SolverContext context;
  PprEstimate* estimate = context.AcquireEstimate(100, 7);
  EXPECT_EQ(context.full_assigns(), 1u);
  EXPECT_EQ(context.sparse_resets(), 0u);
  ASSERT_EQ(estimate->reserve.size(), 100u);
  EXPECT_EQ(estimate->residue[7], 1.0);
  EXPECT_EQ(estimate->ResidueSum(), 1.0);
  EXPECT_EQ(estimate->ReserveSum(), 0.0);
}

TEST(SolverContextTest, SparseResetAfterExportLeavesCanonicalState) {
  SolverContext context;
  PprEstimate* estimate = context.AcquireEstimate(50, 0);
  // Simulate a solve that touched a handful of entries.
  estimate->reserve[0] = 0.3;
  estimate->reserve[10] = 0.2;
  estimate->residue[0] = 0.0;
  estimate->residue[20] = 0.5;

  PprResult result;
  context.ExportEstimate(/*with_residues=*/true, &result);
  EXPECT_EQ(result.scores[10], 0.2);
  EXPECT_EQ(result.residues[20], 0.5);

  // Re-acquire for a different source: only a sparse reset, and the
  // workspace is back to the canonical start state.
  estimate = context.AcquireEstimate(50, 5);
  EXPECT_EQ(context.full_assigns(), 1u);
  EXPECT_EQ(context.sparse_resets(), 1u);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(estimate->reserve[v], 0.0) << v;
    EXPECT_EQ(estimate->residue[v], v == 5 ? 1.0 : 0.0) << v;
  }
}

TEST(SolverContextTest, AcquireWithoutExportFallsBackToFullAssign) {
  SolverContext context;
  PprEstimate* estimate = context.AcquireEstimate(30, 0);
  estimate->reserve[13] = 1.0;  // solve aborted: support never recorded
  context.AcquireEstimate(30, 1);
  EXPECT_EQ(context.full_assigns(), 2u);
  EXPECT_EQ(context.sparse_resets(), 0u);
}

TEST(SolverContextTest, SizeChangeForcesFullAssign) {
  SolverContext context;
  context.AcquireEstimate(30, 0);
  PprResult result;
  context.ExportEstimate(false, &result);
  context.AcquireEstimate(40, 0);
  EXPECT_EQ(context.full_assigns(), 2u);
}

TEST(SolverContextTest, ScoresFollowTheSameProtocol) {
  SolverContext context;
  std::vector<double>* scores = context.AcquireScores(64);
  EXPECT_EQ(context.full_assigns(), 1u);
  (*scores)[3] = 0.5;
  (*scores)[60] = 0.5;
  PprResult result;
  context.ExportScores(&result);
  EXPECT_EQ(result.scores[3], 0.5);

  scores = context.AcquireScores(64);
  EXPECT_EQ(context.full_assigns(), 1u);
  EXPECT_EQ(context.sparse_resets(), 1u);
  for (double x : *scores) EXPECT_EQ(x, 0.0);
}

TEST(SolverContextTest, ReleaseEstimateRecordsSupportWithoutExport) {
  SolverContext context;
  PprEstimate* estimate = context.AcquireEstimate(20, 0);
  estimate->reserve[4] = 0.25;
  estimate->residue[9] = 0.75;
  context.ReleaseEstimate();

  estimate = context.AcquireEstimate(20, 2);
  EXPECT_EQ(context.full_assigns(), 1u);
  EXPECT_EQ(context.sparse_resets(), 1u);
  EXPECT_EQ(estimate->reserve[4], 0.0);
  EXPECT_EQ(estimate->residue[9], 0.0);
  EXPECT_EQ(estimate->residue[2], 1.0);
}

TEST(SolverContextTest, QueueIsReusedAcrossAcquires) {
  SolverContext context;
  FifoQueue* q1 = context.AcquireQueue(16);
  q1->PushIfAbsent(3);
  FifoQueue* q2 = context.AcquireQueue(16);
  EXPECT_EQ(q1, q2);
  EXPECT_TRUE(q2->empty()) << "Reconfigure drains leftovers";
  FifoQueue* q3 = context.AcquireQueue(32);
  EXPECT_EQ(q1, q3);
}

TEST(SolverContextTest, ReseedReplaysTheRngStream) {
  SolverContext context(42);
  const uint64_t first = context.rng().NextUint64();
  context.rng().NextUint64();
  context.Reseed(42);
  EXPECT_EQ(context.rng().NextUint64(), first);
}

}  // namespace
}  // namespace ppr
