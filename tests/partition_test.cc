// GraphPartition: deterministic ownership, exact edge accounting
// (internal + ghost == m), ghost-vs-dead-end separation, id-map
// round-trips, and UpdateBatch routing.

#include "graph/partition.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "util/rng.h"

namespace ppr {
namespace {

constexpr PartitionScheme kSchemes[] = {
    PartitionScheme::kHash, PartitionScheme::kRange, PartitionScheme::kDegree};

Graph TestGraph() {
  Rng rng(7);
  return BarabasiAlbert(120, 3, rng);
}

TEST(PartitionScheme_, ParseRoundTrips) {
  for (PartitionScheme scheme : kSchemes) {
    auto parsed = ParsePartitionScheme(PartitionSchemeName(scheme));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), scheme);
  }
  EXPECT_FALSE(ParsePartitionScheme("modulo").ok());
  EXPECT_FALSE(ParsePartitionScheme("").ok());
}

TEST(PartitionBuild, RejectsZeroFragmentsAndEmptyGraph) {
  Graph graph = TestGraph();
  EXPECT_FALSE(GraphPartition::Build(graph, 0, PartitionScheme::kHash).ok());
  Graph empty;
  EXPECT_FALSE(GraphPartition::Build(empty, 2, PartitionScheme::kHash).ok());
}

// Every (scheme, k): nodes partition exactly, edges split exactly into
// internal + ghost, id maps round-trip, and the subgraph rows mirror
// the parent's intra-fragment adjacency.
TEST(PartitionBuild, ExactNodeAndEdgeAccounting) {
  Graph graph = TestGraph();
  for (PartitionScheme scheme : kSchemes) {
    for (size_t k : {1u, 2u, 4u, 7u}) {
      SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) +
                   " k=" + std::to_string(k));
      auto built = GraphPartition::Build(graph, k, scheme);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      const GraphPartition& partition = built.value();
      ASSERT_EQ(partition.num_fragments(), k);
      ASSERT_EQ(partition.num_nodes(), graph.num_nodes());

      NodeId nodes = 0;
      EdgeId internal = 0;
      EdgeId ghosts = 0;
      for (size_t f = 0; f < k; ++f) {
        const GraphFragment& frag = partition.fragment(f);
        ASSERT_EQ(frag.subgraph.num_nodes(), frag.local_to_global.size());
        ASSERT_EQ(frag.stats.num_nodes, frag.subgraph.num_nodes());
        ASSERT_EQ(frag.stats.num_edges, frag.subgraph.num_edges());
        nodes += frag.subgraph.num_nodes();
        internal += frag.subgraph.num_edges();
        ghosts += frag.stats.ghost_edges;
        for (NodeId local = 0; local < frag.subgraph.num_nodes(); ++local) {
          const NodeId global = frag.local_to_global[local];
          ASSERT_EQ(partition.FragmentOf(global), f);
          ASSERT_EQ(partition.LocalId(global), local);
          // Row check: local neighbors are exactly the parent's
          // same-fragment neighbors, in order.
          std::vector<NodeId> expected;
          for (NodeId h : graph.OutNeighbors(global)) {
            if (partition.FragmentOf(h) == f) {
              expected.push_back(partition.LocalId(h));
            }
          }
          auto got = frag.subgraph.OutNeighbors(local);
          ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected);
        }
      }
      EXPECT_EQ(nodes, graph.num_nodes());
      EXPECT_EQ(internal + ghosts, graph.num_edges());

      const PartitionReport& report = partition.report();
      EXPECT_EQ(report.fragments, k);
      EXPECT_EQ(report.internal_edges, internal);
      EXPECT_EQ(report.cut_edges, ghosts);
      EXPECT_EQ(report.total_edges, graph.num_edges());
      EXPECT_GE(report.cut_fraction, 0.0);
      EXPECT_LE(report.cut_fraction, 1.0);
      if (k == 1) {
        EXPECT_EQ(report.cut_edges, 0u);
        EXPECT_EQ(report.cut_fraction, 0.0);
      }
      EXPECT_GE(report.node_imbalance, k == 1 ? 1.0 : 0.0);
      EXPECT_FALSE(FormatReport(report).empty());
      EXPECT_NE(FormatReport(report).find(PartitionSchemeName(scheme)),
                std::string::npos);
    }
  }
}

TEST(PartitionBuild, DeterministicAcrossRebuilds) {
  Graph graph = TestGraph();
  for (PartitionScheme scheme : kSchemes) {
    auto a = GraphPartition::Build(graph, 4, scheme);
    auto b = GraphPartition::Build(graph, 4, scheme);
    ASSERT_TRUE(a.ok() && b.ok());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      ASSERT_EQ(a.value().FragmentOf(v), b.value().FragmentOf(v));
      ASSERT_EQ(a.value().LocalId(v), b.value().LocalId(v));
    }
    for (size_t f = 0; f < 4; ++f) {
      ASSERT_EQ(a.value().fragment(f).subgraph.Fingerprint(),
                b.value().fragment(f).subgraph.Fingerprint());
    }
  }
}

// The satellite fix pinned down: a node whose every edge leaves the
// fragment contributes ghost_edges, NOT dead_ends — dead ends count
// global out-degree 0 only.
TEST(PartitionGhosts, CutEdgesAreNotDeadEnds) {
  // 4 nodes; range k=2 puts {0,1} on f0, {2,3} on f1.
  //   0 -> 2, 0 -> 3   (both ghosts from f0)
  //   1 -> 0           (internal to f0)
  //   2 -> 3           (internal to f1)
  //   3 has no out-edges: the only true dead end.
  std::vector<EdgeId> offsets = {0, 2, 3, 4, 4};
  std::vector<NodeId> targets = {2, 3, 0, 3};
  Graph graph(std::move(offsets), std::move(targets));
  auto built = GraphPartition::Build(graph, 2, PartitionScheme::kRange);
  ASSERT_TRUE(built.ok());
  const GraphPartition& partition = built.value();

  const GraphStats& f0 = partition.fragment(0).stats;
  EXPECT_EQ(f0.ghost_edges, 2u);
  // Node 0 has local out-degree 0 but global out-degree 2: not dead.
  EXPECT_EQ(f0.dead_ends, 0u);
  EXPECT_EQ(f0.num_edges, 1u);

  const GraphStats& f1 = partition.fragment(1).stats;
  EXPECT_EQ(f1.ghost_edges, 0u);
  EXPECT_EQ(f1.dead_ends, 1u);  // node 3, globally dead
  EXPECT_EQ(f1.num_edges, 1u);

  // The ghost count surfaces in the one-line rendering (and a plain
  // whole-graph FormatGraphStats stays unchanged).
  EXPECT_NE(FormatGraphStats(f0).find("ghost="), std::string::npos);
  EXPECT_EQ(FormatGraphStats(ComputeGraphStats(graph)).find("ghost="),
            std::string::npos);
}

TEST(PartitionOwnership, PostBuildIdsAreHashOwnedUnderEveryScheme) {
  Graph graph = TestGraph();
  const NodeId n = graph.num_nodes();
  for (PartitionScheme scheme : kSchemes) {
    auto built = GraphPartition::Build(graph, 4, scheme);
    ASSERT_TRUE(built.ok());
    for (NodeId v = n; v < n + 16; ++v) {
      EXPECT_EQ(built.value().FragmentOf(v), GraphPartition::HashOwner(v, 4));
    }
  }
}

TEST(PartitionSplitBatch, RoutesByTailAndBroadcastsNodeOps) {
  Graph graph = TestGraph();
  auto built = GraphPartition::Build(graph, 3, PartitionScheme::kHash);
  ASSERT_TRUE(built.ok());
  const GraphPartition& partition = built.value();

  // Pick a guaranteed cross-fragment and a guaranteed intra-fragment
  // pair from the ownership map itself.
  NodeId same_a = 0, same_b = 0, cross_a = 0, cross_b = 0;
  bool have_same = false, have_cross = false;
  for (NodeId u = 0; u < graph.num_nodes() && !(have_same && have_cross);
       ++u) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (u == v) continue;
      if (partition.FragmentOf(u) == partition.FragmentOf(v) && !have_same) {
        same_a = u;
        same_b = v;
        have_same = true;
      }
      if (partition.FragmentOf(u) != partition.FragmentOf(v) && !have_cross) {
        cross_a = u;
        cross_b = v;
        have_cross = true;
      }
    }
  }
  ASSERT_TRUE(have_same && have_cross);

  UpdateBatch batch;
  batch.Insert(same_a, same_b)
      .Insert(cross_a, cross_b)
      .Delete(cross_a, cross_b)
      .AddNode()
      .RemoveNode(same_a);
  UpdateSplit split = partition.SplitBatch(batch);
  ASSERT_EQ(split.per_fragment.size(), 3u);
  EXPECT_EQ(split.cross_fragment, 2u);  // the insert + delete of the pair

  // Edge updates land exactly once, on the tail's owner.
  size_t edge_updates = 0;
  for (const UpdateBatch& slice : split.per_fragment) {
    for (const EdgeUpdate& update : slice.updates) {
      if (update.kind == UpdateKind::kInsert ||
          update.kind == UpdateKind::kDelete) {
        ++edge_updates;
      }
    }
  }
  EXPECT_EQ(edge_updates, 3u);
  EXPECT_FALSE(split.per_fragment[partition.FragmentOf(same_a)].empty());
  EXPECT_FALSE(split.per_fragment[partition.FragmentOf(cross_a)].empty());

  // Node ops are broadcast: every slice carries one AddNode and one
  // RemoveNode, in batch order.
  for (const UpdateBatch& slice : split.per_fragment) {
    size_t adds = 0, removes = 0;
    for (const EdgeUpdate& update : slice.updates) {
      if (update.kind == UpdateKind::kAddNode) ++adds;
      if (update.kind == UpdateKind::kRemoveNode) ++removes;
    }
    EXPECT_EQ(adds, 1u);
    EXPECT_EQ(removes, 1u);
  }
}

// Degree-aware partitioning must beat hash on edge balance for a
// heavy-tailed graph — that is its entire reason to exist.
TEST(PartitionDegree, BalancesEdgesOnHeavyTail) {
  Rng rng(11);
  Graph graph = BarabasiAlbert(400, 4, rng);
  auto degree = GraphPartition::Build(graph, 4, PartitionScheme::kDegree);
  ASSERT_TRUE(degree.ok());
  // LPT on out-degree gets within a few percent of perfect edge balance.
  EXPECT_LT(degree.value().report().edge_imbalance, 1.15);
}

TEST(PartitionBuild, MoreFragmentsThanNodes) {
  std::vector<EdgeId> offsets = {0, 1, 2, 2};
  std::vector<NodeId> targets = {1, 2};
  Graph graph(std::move(offsets), std::move(targets));  // 3 nodes
  for (PartitionScheme scheme : kSchemes) {
    auto built = GraphPartition::Build(graph, 5, scheme);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    NodeId nodes = 0;
    EdgeId edges = 0;
    for (size_t f = 0; f < 5; ++f) {
      nodes += built.value().fragment(f).subgraph.num_nodes();
      edges += built.value().fragment(f).subgraph.num_edges() +
               built.value().fragment(f).stats.ghost_edges;
    }
    EXPECT_EQ(nodes, 3u);
    EXPECT_EQ(edges, 2u);
  }
}

}  // namespace
}  // namespace ppr
