#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace ppr {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter t({"a", "bb"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "23456"});
  std::string s = t.ToString();
  // Every line containing 'value' data starts the second column at the
  // same offset; verify by finding both cells after equal-width padding.
  size_t header_pos = s.find("value");
  size_t cell_pos = s.find("23456");
  ASSERT_NE(header_pos, std::string::npos);
  ASSERT_NE(cell_pos, std::string::npos);
  size_t header_col = header_pos - s.rfind('\n', header_pos) - 1;
  size_t cell_col = cell_pos - s.rfind('\n', cell_pos) - 1;
  EXPECT_EQ(header_col, cell_col);
}

TEST(TablePrinterTest, RowsRenderInOrder) {
  TablePrinter t({"k"});
  t.AddRow({"first"});
  t.AddRow({"second"});
  std::string s = t.ToString();
  EXPECT_LT(s.find("first"), s.find("second"));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterDeathTest, WrongCellCountAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row has 1 cells");
}

}  // namespace
}  // namespace ppr
