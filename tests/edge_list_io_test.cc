#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace ppr {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(EdgeListIoTest, ReadsSnapFormat) {
  std::string path = TempPath("snap.txt");
  WriteFile(path,
            "# Directed graph: example\n"
            "# Nodes: 3 Edges: 3\n"
            "0\t1\n"
            "1\t2\n"
            "\n"
            "% trailing comment style\n"
            "2\t0\n");
  auto edges = ReadEdgeListText(path);
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  ASSERT_EQ(edges.value().size(), 3u);
  EXPECT_EQ(edges.value()[0], (Edge{0, 1}));
  EXPECT_EQ(edges.value()[2], (Edge{2, 0}));
}

TEST_F(EdgeListIoTest, AcceptsSpacesAndCommas) {
  std::string path = TempPath("mixed.txt");
  WriteFile(path, "0 1\n1,2\n2  3\n");
  auto edges = ReadEdgeListText(path);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges.value().size(), 3u);
}

TEST_F(EdgeListIoTest, MissingFileIsIOError) {
  auto edges = ReadEdgeListText(TempPath("does_not_exist.txt"));
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kIOError);
}

TEST_F(EdgeListIoTest, MalformedLineIsCorruption) {
  std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot-a-number 2\n");
  auto edges = ReadEdgeListText(path);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kCorruption);
  EXPECT_NE(edges.status().message().find(":2"), std::string::npos)
      << "error should carry the line number: "
      << edges.status().message();
}

TEST_F(EdgeListIoTest, SingleFieldLineIsCorruption) {
  std::string path = TempPath("short.txt");
  WriteFile(path, "42\n");
  auto edges = ReadEdgeListText(path);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, OversizedIdIsOutOfRange) {
  std::string path = TempPath("big.txt");
  WriteFile(path, "0 99999999999\n");
  auto edges = ReadEdgeListText(path);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kOutOfRange);
}

TEST_F(EdgeListIoTest, TextRoundTrip) {
  std::string path = TempPath("roundtrip.txt");
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {5, 3}};
  ASSERT_TRUE(WriteEdgeListText(path, edges).ok());
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), edges);
}

TEST_F(EdgeListIoTest, LoadGraphAppliesCleaning) {
  std::string path = TempPath("load.txt");
  WriteFile(path, "10 20\n20 10\n10 10\n10 20\n");
  auto graph = LoadGraphFromEdgeList(path);
  ASSERT_TRUE(graph.ok());
  // Self loop dropped, duplicate collapsed, ids relabeled to {0, 1}.
  EXPECT_EQ(graph.value().num_nodes(), 2u);
  EXPECT_EQ(graph.value().num_edges(), 2u);
}

TEST_F(EdgeListIoTest, BinaryRoundTripPreservesCsrExactly) {
  Rng rng(8);
  Graph g = ErdosRenyi(300, 6.0, rng);
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(WriteGraphBinary(path, g).ok());
  auto loaded = ReadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().out_offsets(), g.out_offsets());
  EXPECT_EQ(loaded.value().out_targets(), g.out_targets());
}

TEST_F(EdgeListIoTest, BinaryRejectsBadMagic) {
  std::string path = TempPath("bad.bin");
  WriteFile(path, "this is not a graph file at all, definitely");
  auto loaded = ReadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, BinaryRejectsTruncation) {
  Rng rng(9);
  Graph g = ErdosRenyi(100, 4.0, rng);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteGraphBinary(path, g).ok());
  // Truncate the file to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  WriteFile(path, content.substr(0, content.size() / 2));
  auto loaded = ReadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, UpdateStreamRoundTrips) {
  UpdateBatch batch;
  batch.Insert(0, 5).Delete(3, 1).Insert(7, 2);
  std::string path = TempPath("updates.txt");
  ASSERT_TRUE(WriteUpdateStreamText(path, batch).ok());
  auto loaded = ReadUpdateStreamText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().updates, batch.updates);
}

TEST_F(EdgeListIoTest, UpdateStreamAcceptsAliasesAndComments) {
  std::string path = TempPath("updates_alias.txt");
  WriteFile(path,
            "# update stream\n"
            "a 1 2\n"
            "\n"
            "d 1 2\n"
            "+ 3 4\n");
  auto loaded = ReadUpdateStreamText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().updates[0],
            (EdgeUpdate{UpdateKind::kInsert, 1, 2}));
  EXPECT_EQ(loaded.value().updates[1],
            (EdgeUpdate{UpdateKind::kDelete, 1, 2}));
}

TEST_F(EdgeListIoTest, UpdateStreamRejectsMalformedLines) {
  EXPECT_FALSE(ReadUpdateStreamText(TempPath("nope.txt")).ok());

  std::string path = TempPath("updates_bad.txt");
  WriteFile(path, "+ 1\n");
  EXPECT_EQ(ReadUpdateStreamText(path).status().code(),
            StatusCode::kCorruption);
  WriteFile(path, "* 1 2\n");
  EXPECT_EQ(ReadUpdateStreamText(path).status().code(),
            StatusCode::kCorruption);
  WriteFile(path, "+ 1 banana\n");
  EXPECT_EQ(ReadUpdateStreamText(path).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace ppr
