// PprServer query coalescing (options.max_batch): workers drain
// compatible queued queries into one fused SolveMany while results stay
// stamped per query and deadline/cancel semantics are unchanged. The
// suites are named PprServerBatch*/BatchQueue* so scripts/check.sh runs
// them under TSAN as well.

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch_solver.h"
#include "api/registry.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "serve/bounded_queue.h"
#include "serve/ppr_server.h"
#include "util/rng.h"

namespace ppr {
namespace {

Graph TestGraph() {
  Rng rng(99);
  return BarabasiAlbert(120, 3, rng);
}

/// A batch-capable GateSolver: DoSolve blocks on a gate (the
/// deterministic way to hold a worker busy while tests stack the
/// queue), DoSolveMany answers immediately with e_source per query and
/// records every fused block size it saw.
class GateBatchSolver : public BatchSolver {
 public:
  explicit GateBatchSolver(size_t max_fused, bool gate_singles = true)
      : gate_singles_(gate_singles) {
    set_max_fused(max_fused);
  }

  std::string_view name() const override { return "gatebatch"; }
  SolverCapabilities capabilities() const override { return {}; }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until `count` DoSolve calls are waiting on the gate.
  void AwaitEntered(unsigned count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= count; });
  }

  std::vector<size_t> fused_sizes() {
    std::lock_guard<std::mutex> lock(mu_);
    return fused_sizes_;
  }

 protected:
  Status DoSolve(const PprQuery& query, SolverContext&,
                 PprResult* result) override {
    if (gate_singles_) {
      std::unique_lock<std::mutex> lock(mu_);
      entered_++;
      cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    result->scores.assign(graph()->num_nodes(), 0.0);
    result->scores[query.source] = 1.0;
    return Status::OK();
  }

  Status DoSolveMany(std::span<const PprQuery> queries,
                     std::span<const uint64_t> /*seeds*/,
                     std::span<const CancelToken* const> /*cancels*/,
                     SolverContext&, std::span<PprResult> results,
                     std::span<Status> statuses) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      fused_sizes_.push_back(queries.size());
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i].scores.assign(graph()->num_nodes(), 0.0);
      results[i].scores[queries[i].source] = 1.0;
      statuses[i] = Status::OK();
    }
    return Status::OK();
  }

 private:
  const bool gate_singles_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  unsigned entered_ = 0;
  std::vector<size_t> fused_sizes_;
};

// A worker whose first query blocks lets the queue stack up; when the
// gate opens, the next pop drains the stacked compatible queries into
// one fused block — deterministically, with a single worker.
TEST(PprServerBatchTest, CompatibleQueuedQueriesCoalesce) {
  const Graph graph = TestGraph();
  auto gate = std::make_unique<GateBatchSolver>(/*max_fused=*/8);
  GateBatchSolver* plug = gate.get();
  ASSERT_TRUE(plug->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.max_batch = 4;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  PprQuery query;
  query.source = 1;
  auto first = server.Submit(query);
  ASSERT_TRUE(first.ok());
  plug->AwaitEntered(1);  // the worker is now parked inside DoSolve

  std::vector<PprFuture> stacked;
  for (NodeId s = 2; s <= 4; ++s) {
    PprQuery q;
    q.source = s;
    auto submitted = server.Submit(q);
    ASSERT_TRUE(submitted.ok());
    stacked.push_back(std::move(submitted).ValueOrDie());
  }
  plug->Open();

  PprResult result;
  ASSERT_TRUE(first.value().Get(&result).ok());
  for (size_t i = 0; i < stacked.size(); ++i) {
    ASSERT_TRUE(stacked[i].Get(&result).ok());
    // Per-query stamping survives fusion: each future gets its own
    // query's answer.
    EXPECT_EQ(result.scores[2 + i], 1.0) << i;
  }
  server.Stop();

  const std::vector<size_t> sizes = plug->fused_sizes();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 3u);

  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.coalesced, 3u);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.failed + stats.shed + stats.cancelled);
}

// max_batch = 1 (the default) never coalesces, even on a batch-capable
// solver with a stacked queue.
TEST(PprServerBatchTest, DefaultMaxBatchDisablesCoalescing) {
  const Graph graph = TestGraph();
  auto gate = std::make_unique<GateBatchSolver>(/*max_fused=*/8);
  GateBatchSolver* plug = gate.get();
  ASSERT_TRUE(plug->Prepare(graph).ok());

  PprServer server({.workers = 1});
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  PprQuery query;
  query.source = 1;
  auto first = server.Submit(query);
  ASSERT_TRUE(first.ok());
  plug->AwaitEntered(1);
  auto second = server.Submit(query);
  ASSERT_TRUE(second.ok());
  plug->Open();
  first.value().Wait();
  second.value().Wait();
  server.Stop();

  EXPECT_TRUE(plug->fused_sizes().empty());
  EXPECT_EQ(server.stats().coalesced, 0u);
}

// A coalesced query whose deadline expired in-queue is shed exactly as
// on the one-query path: triaged out of the block before any compute,
// counted in stats().shed, future fails with DeadlineExceeded.
TEST(PprServerBatchTest, ExpiredCoalescedQueriesAreShed) {
  const Graph graph = TestGraph();
  auto gate = std::make_unique<GateBatchSolver>(/*max_fused=*/8);
  GateBatchSolver* plug = gate.get();
  ASSERT_TRUE(plug->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 1;
  options.max_batch = 4;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  PprQuery query;
  query.source = 1;
  auto first = server.Submit(query);
  ASSERT_TRUE(first.ok());
  plug->AwaitEntered(1);

  PprQuery doomed;
  doomed.source = 2;
  doomed.deadline = std::chrono::nanoseconds(1);
  auto expired_a = server.Submit(doomed);
  doomed.source = 3;
  auto expired_b = server.Submit(doomed);
  PprQuery live;
  live.source = 4;
  auto survivor = server.Submit(live);
  ASSERT_TRUE(expired_a.ok() && expired_b.ok() && survivor.ok());

  // Let the 1ns deadlines lapse while the worker is still parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  plug->Open();

  EXPECT_EQ(expired_a.value().Get(nullptr).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired_b.value().Get(nullptr).code(),
            StatusCode::kDeadlineExceeded);
  PprResult result;
  ASSERT_TRUE(survivor.value().Get(&result).ok());
  EXPECT_EQ(result.scores[4], 1.0);
  ASSERT_TRUE(first.value().Get(nullptr).ok());
  server.Stop();

  const PprServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 2u);
  // The block shrank to one live query — nothing was shared, so
  // nothing counts as coalesced.
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.failed + stats.shed + stats.cancelled);
}

// SolveBatch result ordering under coalescing with out-of-order
// completion: four workers race fused blocks of four, yet results[i]
// always answers queries[i].
TEST(PprServerBatchTest, SolveBatchKeepsSubmissionOrderUnderCoalescing) {
  const Graph graph = TestGraph();
  auto gate = std::make_unique<GateBatchSolver>(/*max_fused=*/8,
                                                /*gate_singles=*/false);
  GateBatchSolver* plug = gate.get();
  ASSERT_TRUE(plug->Prepare(graph).ok());

  PprServerOptions options;
  options.workers = 4;
  options.max_batch = 4;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver("gate", std::move(gate)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(32);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].source = static_cast<NodeId>(i % graph.num_nodes());
  }
  std::vector<PprResult> results;
  ASSERT_TRUE(server.SolveBatch(queries, &results).ok());
  server.Stop();

  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i].scores[queries[i].source], 1.0) << i;
  }
}

// End-to-end determinism survives coalescing: a served, possibly-fused
// powitr result is bit-identical to a serial Solve of the same
// (query, seed) on a fresh context — the same contract serve_test pins
// for the one-query path.
TEST(PprServerBatchTest, CoalescedResultsBitIdenticalToSerial) {
  const Graph graph = TestGraph();
  const std::string spec = "powitr:lambda=1e-5,batch=8";

  PprServerOptions options;
  options.workers = 2;
  options.max_batch = 8;
  PprServer server(options);
  ASSERT_TRUE(server.AddSolver(spec, graph).ok());
  ASSERT_TRUE(server.Start().ok());

  std::vector<PprQuery> queries(24);
  const auto sources = SampleQuerySources(graph, queries.size(), /*seed=*/7);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].source = sources[i];
  }
  std::vector<PprResult> results;
  ASSERT_TRUE(server.SolveBatch(queries, &results).ok());
  server.Stop();

  auto created = SolverRegistry::Global().Create(spec);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Solver> reference = std::move(created).ValueOrDie();
  ASSERT_TRUE(reference->Prepare(graph).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    SolverContext context;
    context.Reseed(SplitStream(server.options().seed, i).NextUint64());
    PprResult expected;
    ASSERT_TRUE(reference->Solve(queries[i], context, &expected).ok());
    ASSERT_EQ(results[i].scores.size(), expected.scores.size());
    for (NodeId v = 0; v < expected.scores.size(); ++v) {
      ASSERT_EQ(results[i].scores[v], expected.scores[v])
          << "query " << i << " node " << v;
    }
  }
}

TEST(BatchQueueTest, TryPopIfTakesMatchingHeadOnly) {
  BoundedQueue<int> queue(4);
  EXPECT_FALSE(queue.TryPopIf([](int) { return true; }).has_value());

  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_TRUE(queue.TryPush(3));

  // Head mismatch: nothing is taken, nothing is reordered.
  EXPECT_FALSE(queue.TryPopIf([](int v) { return v == 2; }).has_value());
  EXPECT_EQ(queue.size(), 3u);

  auto head = queue.TryPopIf([](int v) { return v == 1; });
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(*head, 1);

  // FIFO preserved for the rest.
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
}

TEST(BatchQueueTest, TryPopIfFreesASlotForProducers) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));  // full
  ASSERT_TRUE(queue.TryPopIf([](int) { return true; }).has_value());
  EXPECT_TRUE(queue.TryPush(8));
}

}  // namespace
}  // namespace ppr
