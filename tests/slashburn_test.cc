#include "bepi/slashburn.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

void CheckPermutationConsistency(const SlashBurnResult& r, NodeId n) {
  ASSERT_EQ(r.perm.size(), n);
  ASSERT_EQ(r.inverse.size(), n);
  std::vector<NodeId> sorted = r.perm;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < n; ++i) ASSERT_EQ(sorted[i], i) << "not a permutation";
  for (NodeId v = 0; v < n; ++v) ASSERT_EQ(r.inverse[r.perm[v]], v);
}

void CheckBlocksPartitionSpokes(const SlashBurnResult& r) {
  NodeId cursor = 0;
  for (auto [begin, end] : r.blocks) {
    ASSERT_EQ(begin, cursor) << "blocks must tile [0, num_spokes)";
    ASSERT_LT(begin, end);
    cursor = end;
  }
  ASSERT_EQ(cursor, r.num_spokes);
}

void CheckNoCrossBlockSpokeEdges(const Graph& g, const SlashBurnResult& r) {
  // Assign each spoke position to its block index.
  std::vector<int> block_of(r.num_spokes, -1);
  for (size_t b = 0; b < r.blocks.size(); ++b) {
    for (NodeId p = r.blocks[b].first; p < r.blocks[b].second; ++p) {
      block_of[p] = static_cast<int>(b);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId pu = r.perm[u];
    if (pu >= r.num_spokes) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      const NodeId pv = r.perm[v];
      if (pv >= r.num_spokes) continue;
      ASSERT_EQ(block_of[pu], block_of[pv])
          << "edge between different spoke blocks: " << u << "->" << v;
    }
  }
}

TEST(SlashBurnTest, InvariantsAcrossGraphZoo) {
  for (auto& tc : testing::SmallGraphZoo()) {
    tc.graph.BuildInAdjacency();
    SlashBurnOptions options;
    options.max_block = 16;
    SlashBurnResult r = SlashBurn(tc.graph, options);
    CheckPermutationConsistency(r, tc.graph.num_nodes());
    CheckBlocksPartitionSpokes(r);
    CheckNoCrossBlockSpokeEdges(tc.graph, r);
  }
}

TEST(SlashBurnTest, StarGraphHubIsCenter) {
  Graph g = StarGraph(50);
  g.BuildInAdjacency();
  SlashBurnOptions options;
  options.hubs_per_round = 1;
  options.max_block = 4;
  SlashBurnResult r = SlashBurn(g, options);
  // Removing the center shatters the star into 49 singleton spokes.
  EXPECT_EQ(r.perm[0], g.num_nodes() - 1) << "center should be the hub";
  EXPECT_EQ(r.num_spokes, 49u);
  EXPECT_EQ(r.blocks.size(), 49u);
}

TEST(SlashBurnTest, TinyGraphBecomesSingleBlock) {
  Graph g = CycleGraph(8);
  g.BuildInAdjacency();
  SlashBurnOptions options;
  options.max_block = 16;  // whole graph fits
  SlashBurnResult r = SlashBurn(g, options);
  EXPECT_EQ(r.num_spokes, 8u);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.levels, 0);
}

TEST(SlashBurnTest, MaxBlockIsRespected) {
  for (auto& tc : testing::SmallGraphZoo()) {
    tc.graph.BuildInAdjacency();
    SlashBurnOptions options;
    options.max_block = 8;
    SlashBurnResult r = SlashBurn(tc.graph, options);
    for (auto [begin, end] : r.blocks) {
      ASSERT_LE(end - begin, options.max_block);
    }
  }
}

TEST(SlashBurnTest, HeavyTailGraphShattersQuickly) {
  Rng rng(5);
  Graph g = ChungLuPowerLaw(3000, 8.0, 2.3, rng);
  g.BuildInAdjacency();
  SlashBurnOptions options;
  options.max_block = 64;
  SlashBurnResult r = SlashBurn(g, options);
  // A power-law graph should yield a meaningful spoke fraction with few
  // rounds — the premise of BePI's efficiency.
  EXPECT_GT(r.num_spokes, g.num_nodes() / 20);
  EXPECT_LT(r.levels, 100);
}

}  // namespace
}  // namespace ppr
