// Tests for the solver spec grammar (name[:key=value{,key=value}]) and
// the typed OptionReader used by solver factories.

#include <gtest/gtest.h>

#include "api/registry.h"

namespace ppr {
namespace {

TEST(ParseSolverSpecTest, NameOnly) {
  auto spec = ParseSolverSpec("powerpush");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().name, "powerpush");
  EXPECT_TRUE(spec.value().options.empty());
}

TEST(ParseSolverSpecTest, OptionsAndWhitespace) {
  auto spec = ParseSolverSpec(" speedppr : eps = 0.1 , indexed = true ");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().name, "speedppr");
  ASSERT_EQ(spec.value().options.size(), 2u);
  EXPECT_EQ(spec.value().options[0].key, "eps");
  EXPECT_EQ(spec.value().options[0].value, "0.1");
  EXPECT_EQ(spec.value().options[1].key, "indexed");
  EXPECT_EQ(spec.value().options[1].value, "true");
}

TEST(ParseSolverSpecTest, BareKeyIsTrueShorthand) {
  auto spec = ParseSolverSpec("fora:indexed");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().options.size(), 1u);
  EXPECT_EQ(spec.value().options[0].key, "indexed");
  EXPECT_EQ(spec.value().options[0].value, "true");
}

TEST(ParseSolverSpecTest, TrailingCommaForgiven) {
  auto spec = ParseSolverSpec("mc:eps=0.2,");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().options.size(), 1u);
}

TEST(ParseSolverSpecTest, EmptyNameRejected) {
  EXPECT_FALSE(ParseSolverSpec("").ok());
  EXPECT_FALSE(ParseSolverSpec(":eps=1").ok());
}

TEST(OptionReaderTest, TypedGettersAndDefaults) {
  auto parsed =
      ParseSolverSpec("x:alpha=0.15,count=42,flag=off,frac=0.5");
  ASSERT_TRUE(parsed.ok());
  double alpha = 0.2, frac = 0.0;
  uint64_t count = 0;
  bool flag = true;
  OptionReader reader(parsed.value());
  reader.Double("alpha", &alpha)
      .Uint64("count", &count)
      .Bool("flag", &flag)
      .Double("frac", &frac)
      .Double("missing", &frac);  // absent key leaves the value alone
  ASSERT_TRUE(reader.Finish().ok());
  EXPECT_DOUBLE_EQ(alpha, 0.15);
  EXPECT_EQ(count, 42u);
  EXPECT_FALSE(flag);
  EXPECT_DOUBLE_EQ(frac, 0.5);
}

TEST(OptionReaderTest, DuplicateKeyReportedAsDuplicate) {
  auto parsed = ParseSolverSpec("x:eps=0.1,eps=0.2");
  ASSERT_TRUE(parsed.ok());
  double d = 0;
  OptionReader reader(parsed.value());
  reader.Double("eps", &d);
  Status status = reader.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("duplicate"), std::string::npos)
      << status.ToString();
}

TEST(OptionReaderTest, UnknownKeyFailsFinish) {
  auto parsed = ParseSolverSpec("x:mystery=1");
  ASSERT_TRUE(parsed.ok());
  double d = 0;
  OptionReader reader(parsed.value());
  reader.Double("alpha", &d);
  Status status = reader.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mystery"), std::string::npos);
}

TEST(OptionReaderTest, BadNumberReported) {
  auto parsed = ParseSolverSpec("x:alpha=fast");
  ASSERT_TRUE(parsed.ok());
  double d = 0;
  OptionReader reader(parsed.value());
  reader.Double("alpha", &d);
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(OptionReaderTest, BadBoolReported) {
  auto parsed = ParseSolverSpec("x:flag=maybe");
  ASSERT_TRUE(parsed.ok());
  bool b = false;
  OptionReader reader(parsed.value());
  reader.Bool("flag", &b);
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(RegistryOptionTest, IndexEntriesRejectTheIndexedKey) {
  // "speedppr-index:indexed=false" would run the wrong variant under an
  // -index name; the -index entries therefore do not accept the key.
  for (const char* spec :
       {"speedppr-index:indexed=false", "fora-index:indexed=true"}) {
    auto created = SolverRegistry::Global().Create(spec);
    ASSERT_FALSE(created.ok()) << spec;
    EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument) << spec;
  }
  EXPECT_TRUE(SolverRegistry::Global().Create("speedppr:indexed=true").ok());
}

TEST(RegistryOptionTest, OptionOverridesReachTheSolver) {
  // eps=0.1 through the spec string must change the advertised bound.
  auto loose = SolverRegistry::Global().Create("mc:eps=0.5");
  auto tight = SolverRegistry::Global().Create("mc:eps=0.1");
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  PprQuery query;
  EXPECT_DOUBLE_EQ(loose.value()->AdvertisedL1Bound(query), 0.5);
  EXPECT_DOUBLE_EQ(tight.value()->AdvertisedL1Bound(query), 0.1);
  // And the per-query override wins over the configured default.
  query.epsilon = 0.3;
  EXPECT_DOUBLE_EQ(tight.value()->AdvertisedL1Bound(query), 0.3);
}

}  // namespace
}  // namespace ppr
