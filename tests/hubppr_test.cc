#include "approx/hubppr.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppr {
namespace {

Graph HubTestGraph() {
  Rng rng(77);
  Graph g = BarabasiAlbert(200, 3, rng);  // dead-end free, has real hubs
  g.BuildInAdjacency();
  return g;
}

TEST(HubPprTest, BuildSelectsRequestedHubCount) {
  Graph g = HubTestGraph();
  HubPprIndex::Options options;
  options.num_hubs = 10;
  HubPprIndex index = HubPprIndex::Build(g, options);
  EXPECT_EQ(index.num_hubs(), 10u);
  EXPECT_GT(index.IndexBytes(), 0u);
}

TEST(HubPprTest, DefaultHubCountScalesWithN) {
  Graph g = HubTestGraph();
  HubPprIndex::Options options;
  HubPprIndex index = HubPprIndex::Build(g, options);
  EXPECT_EQ(index.num_hubs(), (g.num_nodes() + 63) / 64);
}

TEST(HubPprTest, HighestDegreeNodeIsAHub) {
  Graph g = HubTestGraph();
  NodeId top = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(top)) top = v;
  }
  HubPprIndex::Options options;
  options.num_hubs = 5;
  HubPprIndex index = HubPprIndex::Build(g, options);
  EXPECT_TRUE(index.IsHub(top))
      << "a BA graph's degree hub dominates PageRank";
}

TEST(HubPprTest, HubQueryAccurate) {
  Graph g = HubTestGraph();
  HubPprIndex::Options options;
  options.num_hubs = 8;
  options.rmax = 1e-4;
  HubPprIndex index = HubPprIndex::Build(g, options);
  // Find a hub to query.
  NodeId hub = 0;
  while (!index.IsHub(hub)) hub++;
  std::vector<double> exact = testing::ExactPprDense(g, 3, 0.2);
  Rng rng(5);
  BiPprResult result = index.Query(3, hub, /*epsilon=*/0.3, rng);
  EXPECT_NEAR(result.estimate, exact[hub], 0.3 * exact[hub] + 1e-3);
  EXPECT_EQ(result.backward_pushes, 0u)
      << "hub targets must not pay backward pushes at query time";
}

TEST(HubPprTest, NonHubQueryAccurate) {
  Graph g = HubTestGraph();
  HubPprIndex::Options options;
  options.num_hubs = 3;
  options.rmax = 1e-4;
  HubPprIndex index = HubPprIndex::Build(g, options);
  NodeId non_hub = 0;
  while (index.IsHub(non_hub)) non_hub++;
  std::vector<double> exact = testing::ExactPprDense(g, 7, 0.2);
  Rng rng(6);
  BiPprResult result = index.Query(7, non_hub, /*epsilon=*/0.3, rng);
  EXPECT_NEAR(result.estimate, exact[non_hub],
              0.3 * exact[non_hub] + 1e-3);
  EXPECT_GT(result.backward_pushes, 0u);
}

TEST(HubPprTest, UnbiasedOverSeedsOnHubTarget) {
  Graph g = HubTestGraph();
  HubPprIndex::Options options;
  options.num_hubs = 4;
  options.rmax = 1e-3;
  HubPprIndex index = HubPprIndex::Build(g, options);
  NodeId hub = 0;
  while (!index.IsHub(hub)) hub++;
  std::vector<double> exact = testing::ExactPprDense(g, 11, 0.2);
  double mean = 0.0;
  constexpr int kRuns = 30;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng(run * 7 + 3);
    mean += index.Query(11, hub, 0.5, rng).estimate / kRuns;
  }
  EXPECT_NEAR(mean, exact[hub], 0.1 * exact[hub] + 5e-4);
}

TEST(HubPprDeathTest, RequiresInAdjacency) {
  Graph g = CycleGraph(8);
  HubPprIndex::Options options;
  EXPECT_DEATH(HubPprIndex::Build(g, options), "transpose");
}

}  // namespace
}  // namespace ppr
