// Unit tests for the persistent WorkerPool: exactly-once chunk
// execution, ordering guarantees, nested regions (no deadlock, no
// oversubscription), exception propagation, idempotent shutdown — and
// the PPR_THREADS thread-budget regression: concurrent parallel regions
// share one physical worker set instead of multiplying thread counts.

#include "util/worker_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace ppr {
namespace {

TEST(WorkerPoolTest, RunsEveryChunkExactlyOnce) {
  WorkerPool pool(3);
  constexpr unsigned kChunks = 64;
  std::vector<std::atomic<int>> runs(kChunks);
  for (auto& r : runs) r.store(0);
  pool.Run(kChunks, [&](unsigned c) {
    ASSERT_LT(c, kChunks);
    runs[c].fetch_add(1);
  });
  for (unsigned c = 0; c < kChunks; ++c) {
    EXPECT_EQ(runs[c].load(), 1) << "chunk " << c;
  }
}

TEST(WorkerPoolTest, ZeroWorkersRunInlineInChunkOrder) {
  // With no pool threads the submitter runs everything itself; chunk
  // claim order is ascending, so execution order is too — the
  // degenerate budget=1 case stays fully deterministic.
  WorkerPool pool(0);
  std::vector<unsigned> order;
  pool.Run(8, [&](unsigned c) { order.push_back(c); });
  ASSERT_EQ(order.size(), 8u);
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(order[c], c);
}

TEST(WorkerPoolTest, ManyConcurrentRegionsAllComplete) {
  // Soak: regions submitted from many threads onto a small pool all
  // finish, with every chunk of every region run exactly once.
  WorkerPool pool(2);
  constexpr unsigned kSubmitters = 6;
  constexpr unsigned kRegionsEach = 20;
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (unsigned s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (unsigned r = 0; r < kRegionsEach; ++r) {
        pool.Run(5, [&](unsigned c) { total.fetch_add(c + 1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  // Each region contributes 1+2+3+4+5 = 15.
  EXPECT_EQ(total.load(), uint64_t{15} * kSubmitters * kRegionsEach);
}

TEST(WorkerPoolTest, NestedRunDoesNotDeadlock) {
  // A chunk spawning its own region must complete even when every pool
  // worker is busy in the outer region — help-first scheduling drains
  // the inner region on the worker's own thread.
  WorkerPool pool(2);
  std::atomic<int> inner_total{0};
  pool.Run(4, [&](unsigned) {
    pool.Run(4, [&](unsigned) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(WorkerPoolTest, NestedParallelForDoesNotDeadlockOrOversubscribe) {
  // The ParallelForThreads form of the same property, on the shared
  // pool: an explicit outer region whose chunks run explicit inner
  // regions. Physical concurrency stays within (pool workers + the one
  // submitting thread), no matter that 4*4 chunks are requested.
  std::atomic<unsigned> active{0};
  std::atomic<unsigned> peak{0};
  ParallelForThreads(0, 4, 4, [&](uint64_t, uint64_t, unsigned) {
    ParallelForThreads(0, 4, 4, [&](uint64_t, uint64_t, unsigned) {
      const unsigned now = active.fetch_add(1) + 1;
      unsigned seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      active.fetch_sub(1);
    }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_LE(peak.load(), WorkerPool::Shared().num_threads() + 1);
}

TEST(WorkerPoolTest, ConcurrentRegionsShareTheBudget) {
  // The oversubscription regression the serve path depends on: four
  // client threads each requesting an 8-way region used to spawn up to
  // 32 OS threads; on the shared pool, physical executors are capped by
  // (pool workers + the 4 submitting threads). The logical partition is
  // untouched — every call still sees its 8 chunks.
  constexpr unsigned kClients = 4;
  constexpr unsigned kRequested = 8;
  std::atomic<unsigned> active{0};
  std::atomic<unsigned> peak{0};
  std::atomic<unsigned> chunks_seen{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      ParallelForThreads(0, 8 * 4096, kRequested,
                         [&](uint64_t, uint64_t, unsigned) {
        chunks_seen.fetch_add(1);
        const unsigned now = active.fetch_add(1) + 1;
        unsigned seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        active.fetch_sub(1);
      });
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(chunks_seen.load(), kClients * kRequested);
  EXPECT_LE(peak.load(), WorkerPool::Shared().num_threads() + kClients);
}

TEST(WorkerPoolTest, ExceptionPropagatesToSubmitterAndPoolSurvives) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.Run(8,
               [&](unsigned c) {
                 if (c == 3) throw std::runtime_error("chunk 3 failed");
               }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> total{0};
  pool.Run(8, [&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(WorkerPoolTest, ExceptionSkipsRemainingChunksOfTheRegion) {
  // Inline pool (0 workers) claims in order, so everything after the
  // throwing chunk must be skipped — fail fast, don't burn the budget.
  WorkerPool pool(0);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.Run(8,
                        [&](unsigned c) {
                          executed.fetch_add(1);
                          if (c == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 3);  // chunks 0, 1, 2
}

TEST(WorkerPoolTest, ConcurrentShutdownJoinsExactlyOnce) {
  // Two racing Shutdown calls (say an explicit one racing the
  // destructor) must not both join the worker threads; the loser waits
  // for the winner, and both return with the pool stopped.
  for (int round = 0; round < 20; ++round) {
    WorkerPool pool(2);
    std::thread racer([&] { pool.Shutdown(); });
    pool.Shutdown();
    racer.join();
    std::atomic<int> total{0};
    pool.Run(3, [&](unsigned) { total.fetch_add(1); });  // inline now
    EXPECT_EQ(total.load(), 3);
  }
}

TEST(WorkerPoolTest, ShutdownIsIdempotentAndRunDegradesInline) {
  WorkerPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  std::vector<unsigned> order;
  pool.Run(4, [&](unsigned c) { order.push_back(c); });  // inline now
  ASSERT_EQ(order.size(), 4u);
  for (unsigned c = 0; c < 4; ++c) EXPECT_EQ(order[c], c);
}

TEST(WorkerPoolTest, ChunksReportInsideParallelWorker) {
  // Every chunk — on a pool worker or the helping submitter — must see
  // ParallelThreadCount() == 1 so nested auto-sized stages stay serial.
  WorkerPool pool(2);
  std::atomic<bool> all_serial{true};
  pool.Run(8, [&](unsigned) {
    if (ParallelThreadCount() != 1) all_serial.store(false);
  });
  EXPECT_TRUE(all_serial.load());
  EXPECT_GE(ParallelThreadCount(), 1u);  // caller flag restored
}

TEST(WorkerPoolTest, PeakInstrumentationResets) {
  WorkerPool pool(2);
  pool.Run(4, [](unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_GE(pool.peak_executors(), 1u);
  pool.ResetPeak();
  EXPECT_EQ(pool.peak_executors(), 0u);
  EXPECT_EQ(pool.active_executors(), 0u);
}

TEST(ThreadBudgetTest, BudgetIsAtLeastOneAndSizesTheSharedPool) {
  EXPECT_GE(ThreadBudget(), 1u);
  // Shared pool = budget minus the submitting thread's slot.
  EXPECT_EQ(WorkerPool::Shared().num_threads(), ThreadBudget() - 1);
}

}  // namespace
}  // namespace ppr
