#include "approx/speedppr.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(SpeedPprTest, EstimateSumsToApproximatelyOne) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  ApproxOptions options;
  options.epsilon = 0.5;
  Rng rng(1);
  std::vector<double> estimate;
  SpeedPpr(g, 0, options, rng, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-6);
}

TEST(SpeedPprTest, SatisfiesRelativeErrorGuaranteeAcrossZoo) {
  for (auto& tc : testing::SmallGraphZoo()) {
    std::vector<double> exact = testing::ExactPprDense(tc.graph, 0, 0.2);
    ApproxOptions options;
    options.epsilon = 0.5;
    Rng rng(23);
    std::vector<double> estimate;
    SpeedPpr(tc.graph, 0, options, rng, &estimate);
    const double mu = options.ResolvedMu(tc.graph.num_nodes());
    EXPECT_LE(MaxRelativeError(estimate, exact, mu), options.epsilon)
        << tc.name;
  }
}

TEST(SpeedPprTest, WalkCountAtMostM) {
  // §6.2: the refinement guarantees W_v <= d_v, so at most m (+dead ends)
  // walks in total — the key to the ε-independent index.
  for (auto& tc : testing::SmallGraphZoo()) {
    for (double eps : {0.5, 0.2, 0.1}) {
      ApproxOptions options;
      options.epsilon = eps;
      Rng rng(3);
      std::vector<double> estimate;
      SolveStats stats = SpeedPpr(tc.graph, 0, options, rng, &estimate);
      EXPECT_LE(stats.random_walks,
                tc.graph.num_edges() + tc.graph.CountDeadEnds())
          << tc.name << " eps=" << eps;
    }
  }
}

TEST(SpeedPprTest, IndexedVariantMeetsGuaranteeForEveryEpsilon) {
  // One index, many ε — the paper's headline index property.
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  Rng index_rng(4);
  WalkIndex index =
      WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, index_rng);
  for (double eps : {0.5, 0.3, 0.1}) {
    ApproxOptions options;
    options.epsilon = eps;
    Rng rng(5);
    std::vector<double> estimate;
    SolveStats stats = SpeedPpr(g, 0, options, rng, &estimate, &index);
    EXPECT_LE(MaxRelativeError(estimate, exact,
                               options.ResolvedMu(g.num_nodes())),
              eps)
        << "eps=" << eps;
    EXPECT_EQ(stats.walk_steps, 0u)
        << "SpeedPPR index must fully cover every epsilon";
  }
}

TEST(SpeedPprTest, UnbiasedOverSeeds) {
  Graph g = PaperExampleGraph();
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.5;
  options.mu = 0.05;
  std::vector<double> mean(g.num_nodes(), 0.0);
  constexpr int kRuns = 30;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng(run * 104729 + 7);
    std::vector<double> estimate;
    SpeedPpr(g, 0, options, rng, &estimate);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      mean[v] += estimate[v] / kRuns;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(mean[v], exact[v], 0.02) << "v=" << v;
  }
}

TEST(SpeedPprTest, FallsBackToMonteCarloWhenWAtMostM) {
  // With a large μ the Chernoff W drops below m and SpeedPPR should run
  // plain MC (the paper's §6.1 remark): recognizable because it performs
  // zero pushes.
  Graph g = CompleteGraph(60);  // m = 3540
  ApproxOptions options;
  options.epsilon = 0.5;
  options.mu = 0.5;  // W ~ 2*2.33*log(60)/(0.25*0.5) ~ 153 < m
  Rng rng(6);
  std::vector<double> estimate;
  SolveStats stats = SpeedPpr(g, 0, options, rng, &estimate);
  EXPECT_EQ(stats.push_operations, 0u);
  EXPECT_GT(stats.random_walks, 0u);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-9);
}

TEST(SpeedPprTest, MoreAccurateThanEpsilonSuggestsOnL1) {
  // The deterministic PowerPush phase resolves most of the mass; the
  // total ℓ1 error should be far below the per-node ε guarantee.
  Graph g = testing::SmallGraphZoo()[8].graph;
  std::vector<double> exact = testing::ExactPprDense(g, 0, 0.2);
  ApproxOptions options;
  options.epsilon = 0.2;
  Rng rng(8);
  std::vector<double> estimate;
  SpeedPpr(g, 0, options, rng, &estimate);
  EXPECT_LT(L1Distance(estimate, exact), 0.05);
}

TEST(SpeedPprTest, DeterministicGivenSeed) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  ApproxOptions options;
  options.epsilon = 0.3;
  Rng a(42);
  Rng b(42);
  std::vector<double> ea;
  std::vector<double> eb;
  SpeedPpr(g, 0, options, a, &ea);
  SpeedPpr(g, 0, options, b, &eb);
  EXPECT_EQ(ea, eb);
}

}  // namespace
}  // namespace ppr
