// Sharded serving tier coverage.
//
// The central claim mirrors the single-server suite, one level up: a
// query submitted with a seed to a ShardedPprServer comes back
// bit-identical to the same (query, spec, seed) on an unsharded
// PprServer — and hence to a serial Solver::Solve — regardless of
// shard count, partitioner, or whole-vector routing mode. On top of
// that: the cross-shard epoch contract under concurrent updates, the
// two reconciling counter taxonomies (summed per-shard and logical
// fan-out) under a chaos/deadline soak, and the surface contracts
// (routing stamps, degraded/coalescing pass-through, bounded drain,
// lifecycle errors).
//
// Suite names deliberately start with Sharded so scripts/check.sh runs
// them under ThreadSanitizer alongside the serving tests.

#include "serve/sharded_server.h"

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/context.h"
#include "api/registry.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace ppr {
namespace {

using Routing = ShardedPprServerOptions::WholeVectorRouting;

constexpr uint64_t kSeedBase = 0x5a2de20260809ULL;

/// Same fixture scheme as the registry/serve conformance suites.
struct Fixtures {
  Graph general;
  Graph strict;
};

const Fixtures& SharedFixtures() {
  static const Fixtures* fixtures = [] {
    auto* f = new Fixtures();
    Rng rng(99);
    f->general = BarabasiAlbert(120, 3, rng);
    f->strict = CompleteGraph(10);
    f->strict.BuildInAdjacency();
    return f;
  }();
  return *fixtures;
}

const Graph& FixtureFor(const Solver& solver) {
  const SolverCapabilities caps = solver.capabilities();
  return (caps.needs_dead_end_free || caps.needs_in_adjacency)
             ? SharedFixtures().strict
             : SharedFixtures().general;
}

uint64_t QuerySeed(unsigned config, unsigned index) {
  return SplitStream(kSeedBase, config * 101 + index).NextUint64();
}

struct ShardConfig {
  size_t shards;
  PartitionScheme scheme;
  Routing routing;
};

/// Shard counts {1, 2, 4} x every partitioner x both whole-vector
/// routing modes — the acceptance matrix of the sharded tier.
constexpr ShardConfig kShardConfigs[] = {
    {1, PartitionScheme::kHash, Routing::kScatterGather},
    {2, PartitionScheme::kHash, Routing::kOwner},
    {2, PartitionScheme::kHash, Routing::kScatterGather},
    {2, PartitionScheme::kRange, Routing::kScatterGather},
    {2, PartitionScheme::kDegree, Routing::kOwner},
    {4, PartitionScheme::kRange, Routing::kOwner},
    {4, PartitionScheme::kHash, Routing::kScatterGather},
};

std::string ConfigName(const ShardConfig& config) {
  return "shards=" + std::to_string(config.shards) + " partition=" +
         std::string(PartitionSchemeName(config.scheme)) +
         (config.routing == Routing::kScatterGather ? " scatter" : " owner");
}

// ---------------------------------------------------------------------
// Conformance: bit-identical to the unsharded path for every solver
// ---------------------------------------------------------------------

TEST(ShardedConformanceTest, BitIdenticalToSingleServerForEverySolver) {
  constexpr unsigned kQueries = 2;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    auto probe = SolverRegistry::Global().Create(name);
    ASSERT_TRUE(probe.ok()) << name;
    std::unique_ptr<Solver> reference = std::move(probe).ValueOrDie();
    const Graph& graph = FixtureFor(*reference);
    ASSERT_TRUE(reference->Prepare(graph).ok()) << name;

    for (unsigned ci = 0; ci < std::size(kShardConfigs); ++ci) {
      const ShardConfig& config = kShardConfigs[ci];
      SCOPED_TRACE(name + " " + ConfigName(config));

      ShardedPprServerOptions options;
      options.shards = config.shards;
      options.partition = config.scheme;
      options.whole_vector = config.routing;
      options.mergers = 2;
      options.shard.workers = 2;
      options.shard.contexts = 1;  // forced recycling within each shard
      ShardedPprServer server(options);
      ASSERT_TRUE(server.AddSolver(name, graph).ok());
      ASSERT_TRUE(server.Start().ok());

      std::vector<PprFuture> futures;
      for (unsigned q = 0; q < kQueries; ++q) {
        PprQuery query;
        query.source = (ci * 31 + q * 37) % graph.num_nodes();
        query.top_k = 5;
        query.want_residues = true;
        auto submitted = server.Submit(query, /*solver=*/{}, QuerySeed(ci, q));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures.push_back(std::move(submitted).ValueOrDie());
      }

      for (unsigned q = 0; q < kQueries; ++q) {
        PprResult served;
        Status status = futures[q].Get(&served);
        ASSERT_TRUE(status.ok()) << status.ToString();

        PprQuery query;
        query.source = (ci * 31 + q * 37) % graph.num_nodes();
        query.top_k = 5;
        query.want_residues = true;
        SolverContext context(QuerySeed(ci, q));
        PprResult expected;
        ASSERT_TRUE(reference->Solve(query, context, &expected).ok());

        // Replicated execution makes every solver — randomized walkers
        // included — exactly reproducible through the sharded tier, so
        // the assertion is bitwise, not a tolerance.
        ASSERT_EQ(served.scores.size(), expected.scores.size());
        for (size_t v = 0; v < expected.scores.size(); ++v) {
          ASSERT_EQ(served.scores[v], expected.scores[v])
              << "q=" << q << " v=" << v;
        }
        ASSERT_EQ(served.top_nodes, expected.top_nodes) << "q=" << q;
        ASSERT_EQ(served.residues.size(), expected.residues.size());
        for (size_t v = 0; v < expected.residues.size(); ++v) {
          ASSERT_EQ(served.residues[v], expected.residues[v]) << "v=" << v;
        }
        EXPECT_EQ(served.epoch, expected.epoch);
        EXPECT_EQ(served.solver, expected.solver);
        EXPECT_EQ(served.l1_bound, expected.l1_bound);
        // The routing decision is observable on the result.
        const bool scattered = config.routing == Routing::kScatterGather;
        EXPECT_EQ(served.shard,
                  scattered ? kShardMerged
                            : static_cast<int32_t>(
                                  server.partition().FragmentOf(query.source)));
      }

      server.Stop();
      const ShardedPprServerStats stats = server.stats();
      const bool scattered = config.routing == Routing::kScatterGather;
      EXPECT_EQ(stats.total.submitted,
                scattered ? kQueries * config.shards : kQueries);
      EXPECT_EQ(stats.total.completed, stats.total.submitted);
      EXPECT_EQ(stats.total.failed, 0u);
      EXPECT_EQ(stats.total.rejected, 0u);
      EXPECT_EQ(stats.fanned, scattered ? kQueries : 0u);
      EXPECT_EQ(stats.merged, stats.fanned);
      EXPECT_EQ(stats.fan_failed, 0u);
      EXPECT_EQ(stats.fan_rejected, 0u);
    }
  }
}

TEST(ShardedBatchTest, SolveBatchMatchesSingleServerBitForBit) {
  // Same per-entry seed derivation as PprServer::SolveBatch, proved on
  // a randomized solver where any seed drift would show immediately.
  const Graph& graph = SharedFixtures().general;
  std::vector<PprQuery> queries(6);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].source = static_cast<NodeId>((7 * i) % graph.num_nodes());
  }

  std::vector<PprResult> reference;
  {
    PprServer server({.workers = 2});
    ASSERT_TRUE(server.AddSolver("mc", graph).ok());
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SolveBatch(queries, &reference, {}, /*seed=*/77).ok());
  }

  for (Routing routing : {Routing::kOwner, Routing::kScatterGather}) {
    ShardedPprServerOptions options;
    options.shards = 2;
    options.whole_vector = routing;
    options.shard.workers = 2;
    ShardedPprServer server(options);
    ASSERT_TRUE(server.AddSolver("mc", graph).ok());
    ASSERT_TRUE(server.Start().ok());
    std::vector<PprResult> rows;
    Status status = server.SolveBatch(queries, &rows, {}, /*seed=*/77);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(rows.size(), reference.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].scores.size(), reference[i].scores.size());
      for (size_t v = 0; v < rows[i].scores.size(); ++v) {
        ASSERT_EQ(rows[i].scores[v], reference[i].scores[v])
            << "i=" << i << " v=" << v;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Routing and per-shard policy pass-through
// ---------------------------------------------------------------------

TEST(ShardedRoutingTest, OwnerStampsMatchPartitionAndPerShardAccounting) {
  const Graph& graph = SharedFixtures().general;
  ShardedPprServerOptions options;
  options.shards = 4;
  options.shard.workers = 1;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver("fwdpush", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kQueries = 40;
  std::vector<size_t> expected_per_shard(4, 0);
  std::vector<PprFuture> futures;
  for (unsigned q = 0; q < kQueries; ++q) {
    PprQuery query;
    query.source = q % graph.num_nodes();
    expected_per_shard[server.partition().FragmentOf(query.source)]++;
    auto submitted = server.Submit(query, {}, QuerySeed(9, q));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  for (unsigned q = 0; q < kQueries; ++q) {
    PprResult result;
    ASSERT_TRUE(futures[q].Get(&result).ok());
    EXPECT_EQ(result.shard, static_cast<int32_t>(server.partition().FragmentOf(
                                q % graph.num_nodes())));
  }
  server.Stop();

  const ShardedPprServerStats stats = server.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(stats.per_shard[s].submitted, expected_per_shard[s]) << s;
    EXPECT_EQ(stats.per_shard[s].completed, expected_per_shard[s]) << s;
  }
  EXPECT_EQ(stats.total.submitted, kQueries);
  EXPECT_EQ(stats.fanned, 0u) << "owner routing never fans";
}

TEST(ShardedRoutingTest, DegradedPolicyFlowsThroughOwnerShards) {
  // Per-shard degraded policy: watermark 0 reroutes every default-spec
  // query on whichever shard owns it, exactly as on a single server.
  const Graph& graph = SharedFixtures().general;
  ShardedPprServerOptions options;
  options.shards = 2;
  options.shard.workers = 1;
  options.shard.degraded.fallback_solver = "mc:eps=0.7";
  options.shard.degraded.queue_watermark = 0;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver("fwdpush", graph).ok());
  ASSERT_TRUE(server.AddSolver("mc:eps=0.7", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  PprQuery query;
  query.source = 3;
  auto rerouted = server.Submit(query, /*solver=*/{}, QuerySeed(10, 0));
  ASSERT_TRUE(rerouted.ok());
  PprResult result;
  ASSERT_TRUE(rerouted.value().Get(&result).ok());
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.solver, "mc");

  // An explicit spec is never rerouted, sharded or not.
  auto pinned = server.Submit(query, "fwdpush", QuerySeed(10, 1));
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned.value().Get(&result).ok());
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.solver, "fwdpush");

  server.Stop();
  const ShardedPprServerStats stats = server.stats();
  EXPECT_EQ(stats.total.degraded, 1u);
  EXPECT_EQ(stats.total.completed, 2u);
}

TEST(ShardedRoutingTest, CoalescingFlowsThroughOwnerShards) {
#if !PPR_FAULT_INJECTION
  GTEST_SKIP() << "built with -DPPR_FAULT_INJECTION=OFF";
#else
  // Hold the owning shard's single worker inside the first solve (one
  // injected 50ms delay), stack three compatible queries behind it, and
  // the shard's max_batch coalescing answers them as one fused block —
  // visible in the aggregated counters.
  ScopedFaultInjection chaos(0x5AADC0ULL);
  FaultSpec slow_first;
  slow_first.probability = 1.0;
  slow_first.delay = std::chrono::milliseconds(50);
  slow_first.max_triggers = 1;
  FaultInjector::Global().SetFault("solver.solve", slow_first);

  const Graph& graph = SharedFixtures().general;
  const std::string spec = "powitr:lambda=1e-5,batch=8";
  ShardedPprServerOptions options;
  options.shards = 2;
  options.shard.workers = 1;
  options.shard.max_batch = 4;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver(spec, graph).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kQueries = 4;
  std::vector<PprFuture> futures;
  for (unsigned q = 0; q < kQueries; ++q) {
    PprQuery query;
    query.source = 5;  // one owner shard for all four
    auto submitted = server.Submit(query, spec, QuerySeed(11, q));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  for (PprFuture& future : futures) {
    PprResult result;
    ASSERT_TRUE(future.Get(&result).ok());
  }
  server.Stop();

  const ShardedPprServerStats stats = server.stats();
  EXPECT_EQ(stats.total.completed, kQueries);
  EXPECT_GE(stats.total.coalesced, 2u) << "no fusion happened on the shard";
  EXPECT_LE(stats.total.coalesced, kQueries);
#endif  // PPR_FAULT_INJECTION
}

// ---------------------------------------------------------------------
// Updates: routing accounting, epoch agreement, divergence detection
// ---------------------------------------------------------------------

TEST(ShardedUpdateTest, CrossFragmentAccountingMatchesSplitBatch) {
  Rng rng(17);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  ShardedPprServerOptions options;
  options.shards = 2;
  options.shard.workers = 1;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-6", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  // The same partition the router built, rebuilt independently — the
  // accounting it reports must be exactly SplitBatch's.
  auto mirror = GraphPartition::Build(graph, 2, PartitionScheme::kHash);
  ASSERT_TRUE(mirror.ok());

  UpdateBatch batch;
  batch.Insert(0, 1).Insert(2, 3).Delete(0, 1).AddNode();
  const UpdateSplit split = mirror.value().SplitBatch(batch);

  UpdateStats stats{};
  auto applied = server.ApplyUpdates(batch, {}, &stats);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value(), batch.size());
  EXPECT_EQ(stats.epoch, applied.value());

  server.Stop();
  const ShardedPprServerStats after = server.stats();
  EXPECT_EQ(after.updates_applied, 1u);
  EXPECT_EQ(after.cross_fragment_updates, split.cross_fragment);
  // Every replica applied the batch: the summed per-shard counter sees
  // one update batch per shard.
  EXPECT_EQ(after.total.updates, 2u);
}

TEST(ShardedUpdateTest, BypassingTheRouterIsDetectedAsDivergence) {
  Rng rng(17);
  Graph graph = ErdosRenyi(40, 3.0, rng);
  ShardedPprServerOptions options;
  options.shards = 2;
  options.shard.workers = 1;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-6", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  // Mutating a shard directly voids the replica contract...
  UpdateBatch rogue;
  rogue.Insert(4, 7);
  ASSERT_TRUE(server.shard(0).ApplyUpdates(rogue).ok());

  // ...and the next router-driven batch detects the epoch divergence
  // instead of silently serving mixed-epoch replicas.
  UpdateBatch batch;
  batch.Insert(1, 2);
  auto applied = server.ApplyUpdates(batch);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kCorruption)
      << applied.status().ToString();
  server.Stop();
}

// ---------------------------------------------------------------------
// Epoch consistency under concurrent updates, both routing modes
// ---------------------------------------------------------------------

TEST(ShardedDynamicTest, EpochConsistentAcrossShardsUnderConcurrentUpdates) {
  // The sharded restatement of the single-server acceptance test: with
  // clients streaming whole-vector queries while batches apply through
  // the router, every served result stamps a batch-boundary epoch and
  // matches that boundary snapshot's dense solution within its bound —
  // owner-routed and scatter-merged alike. A merged result additionally
  // proves the cross-shard barrier: its partials all answered at one
  // epoch or the merge would have failed with Corruption.
  constexpr NodeId kSource = 1;
  constexpr size_t kBatches = 6;
  Rng rng(17);
  Graph graph = ErdosRenyi(40, 3.0, rng);

  UpdateWorkloadOptions workload;
  workload.count = 30;
  workload.delete_fraction = 0.3;
  workload.seed = 23;
  UpdateBatch stream = GenerateUpdateStream(graph, workload).ValueOrDie();
  std::vector<UpdateBatch> batches(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    batches[b].updates.assign(
        stream.updates.begin() + b * stream.size() / kBatches,
        stream.updates.begin() + (b + 1) * stream.size() / kBatches);
  }

  std::map<uint64_t, std::vector<double>> exact;
  {
    DynamicGraph replay(graph);
    exact[0] = ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    for (const UpdateBatch& batch : batches) {
      ASSERT_TRUE(replay.Apply(batch).ok());
      exact[replay.epoch()] =
          ppr::testing::ExactPprDense(replay.Snapshot(), kSource, 0.2);
    }
  }

  for (Routing routing : {Routing::kOwner, Routing::kScatterGather}) {
    for (const char* spec : {"dynfwdpush:rmax=1e-9", "dynfora:eps=0.3",
                             "dynspeedppr:eps=0.3"}) {
      SCOPED_TRACE(std::string(spec) +
                   (routing == Routing::kScatterGather ? " scatter"
                                                       : " owner"));
      ShardedPprServerOptions options;
      options.shards = 2;
      options.whole_vector = routing;
      options.shard.workers = 2;
      options.shard.contexts = 2;
      ShardedPprServer server(options);
      ASSERT_TRUE(server.AddSolver(spec, graph).ok());
      ASSERT_TRUE(server.Start().ok());

      std::atomic<bool> done{false};
      std::vector<std::vector<PprFuture>> futures(2);
      std::vector<std::thread> clients;
      for (size_t c = 0; c < futures.size(); ++c) {
        clients.emplace_back([&, c] {
          PprQuery query;
          query.source = kSource;
          while (!done.load(std::memory_order_relaxed)) {
            auto submitted = server.Submit(query, spec);
            if (submitted.ok()) {
              futures[c].push_back(std::move(submitted).ValueOrDie());
            }
            std::this_thread::yield();
          }
        });
      }

      uint64_t final_epoch = 0;
      for (const UpdateBatch& batch : batches) {
        auto applied = server.ApplyUpdates(batch, spec);
        ASSERT_TRUE(applied.ok()) << applied.status().ToString();
        final_epoch = applied.value();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      done.store(true);
      for (std::thread& t : clients) t.join();
      server.Stop();
      EXPECT_EQ(final_epoch, stream.size());

      size_t checked = 0;
      for (const auto& client_futures : futures) {
        for (const PprFuture& future : client_futures) {
          PprResult result;
          Status status = future.Get(&result);
          if (!status.ok()) continue;  // shutdown race rejections only
          if (routing == Routing::kScatterGather) {
            ASSERT_EQ(result.shard, kShardMerged);
          }
          auto it = exact.find(result.epoch);
          ASSERT_NE(it, exact.end())
              << "result stamped epoch " << result.epoch
              << ", which is not a batch boundary — a torn update leaked";
          ASSERT_LT(L1Distance(result.scores, it->second),
                    result.l1_bound + 1e-11)
              << "epoch " << result.epoch;
          checked++;
        }
      }
      EXPECT_GT(checked, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Chaos/deadline soak: both taxonomies reconcile exactly
// ---------------------------------------------------------------------

TEST(ShardedChaosTest, SoakReconcilesBothTaxonomiesUnderFaultsAndDeadlines) {
  // The sharded acceptance invariant: after a soak of submissions,
  // deadlines, cancellations, updates, and (when compiled in) injected
  // faults, the *summed* per-shard taxonomy and the *logical* fan-out
  // taxonomy both reconcile exactly — no query is double-counted or
  // lost between the router and the shards.
  Rng graph_rng(21);
  Graph graph = ErdosRenyi(60, 3.0, graph_rng);

  for (Routing routing : {Routing::kOwner, Routing::kScatterGather}) {
    SCOPED_TRACE(routing == Routing::kScatterGather ? "scatter" : "owner");
#if PPR_FAULT_INJECTION
    ScopedFaultInjection chaos(0x5AADC4A05ULL);
    {
      FaultSpec flaky;
      flaky.probability = 0.2;
      flaky.error = StatusCode::kUnavailable;
      flaky.delay = std::chrono::microseconds(300);
      FaultInjector::Global().SetFault("solver.solve", flaky);
      FaultSpec slow_pop;
      slow_pop.probability = 0.5;
      slow_pop.delay = std::chrono::microseconds(200);
      FaultInjector::Global().SetFault("serve.queue.pop", slow_pop);
    }
#endif  // PPR_FAULT_INJECTION

    ShardedPprServerOptions options;
    options.shards = 2;
    options.whole_vector = routing;
    options.mergers = 2;
    options.merge_queue_capacity = 32;
    options.shard.workers = 2;
    options.shard.contexts = 2;
    options.shard.queue_capacity = 64;
    ShardedPprServer server(options);
    ASSERT_TRUE(server.AddSolver("mc:eps=0.7", graph).ok());
    ASSERT_TRUE(server.AddSolver("dynfwdpush:rmax=1e-6", graph).ok());
    ASSERT_TRUE(server.Start().ok());

    constexpr unsigned kClients = 4;
    constexpr unsigned kEach = 30;
    const std::chrono::nanoseconds kDeadlines[] = {
        std::chrono::nanoseconds(0),     // none
        std::chrono::milliseconds(50),   // generous
        std::chrono::microseconds(200),  // likely to expire pre-solve
    };
    std::vector<std::vector<PprFuture>> futures(kClients);
    std::atomic<unsigned> accepted{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (unsigned q = 0; q < kEach; ++q) {
          PprQuery query;
          const bool dynamic = (c + q) % 3 == 0;
          query.source = (17 * c + q) % graph.num_nodes();
          query.deadline = kDeadlines[(c + q) % 3];
          auto submitted = server.Submit(
              query, dynamic ? "dynfwdpush:rmax=1e-6" : "mc:eps=0.7");
          if (!submitted.ok()) {
            // Backpressure (shard queue or merge queue full): allowed,
            // just not admitted.
            EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable)
                << submitted.status().ToString();
            continue;
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
          futures[c].push_back(std::move(submitted).ValueOrDie());
          if (q % 9 == 4) futures[c].back().Cancel();
        }
      });
    }

    std::atomic<unsigned> updates_ok{0};
    std::thread updater([&] {
      Rng update_rng(31);
      for (int b = 0; b < 6; ++b) {
        UpdateBatch batch;
        batch.Insert(
            static_cast<NodeId>(update_rng.NextBounded(graph.num_nodes())),
            static_cast<NodeId>(update_rng.NextBounded(graph.num_nodes())));
        auto applied = server.ApplyUpdates(batch, "dynfwdpush:rmax=1e-6");
        if (applied.ok()) {
          updates_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Self-inserts are rejected as invalid — atomically, on every
          // replica; anything else would be a real failure.
          EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument)
              << applied.status().ToString();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    for (std::thread& t : clients) t.join();
    updater.join();
    server.Stop(std::chrono::seconds(20));

    for (unsigned c = 0; c < kClients; ++c) {
      for (PprFuture& f : futures[c]) {
        ASSERT_TRUE(f.done()) << "an accepted future never completed";
      }
    }

    const ShardedPprServerStats stats = server.stats();
    // Per-shard reconciliation survives summation exactly.
    for (size_t s = 0; s < stats.per_shard.size(); ++s) {
      const PprServerStats& shard = stats.per_shard[s];
      EXPECT_EQ(shard.completed + shard.failed + shard.shed + shard.cancelled,
                shard.submitted)
          << "shard " << s;
    }
    EXPECT_EQ(stats.total.completed + stats.total.failed + stats.total.shed +
                  stats.total.cancelled,
              stats.total.submitted)
        << "completed=" << stats.total.completed
        << " failed=" << stats.total.failed << " shed=" << stats.total.shed
        << " cancelled=" << stats.total.cancelled;
    // The logical fan-out axis reconciles on its own.
    EXPECT_EQ(stats.merged + stats.fan_failed + stats.fan_shed +
                  stats.fan_cancelled,
              stats.fanned)
        << "merged=" << stats.merged << " fan_failed=" << stats.fan_failed
        << " fan_shed=" << stats.fan_shed
        << " fan_cancelled=" << stats.fan_cancelled;
    if (routing == Routing::kScatterGather) {
      // Every accepted query was a whole-vector fan-out.
      EXPECT_EQ(stats.fanned, accepted.load());
    } else {
      EXPECT_EQ(stats.total.submitted, accepted.load());
      EXPECT_EQ(stats.fanned, 0u);
    }
    EXPECT_EQ(stats.updates_applied, updates_ok.load());
    EXPECT_EQ(stats.total.updates, updates_ok.load() * options.shards);

    // Terminal statuses come from the closed expected set, and a
    // success that carried a deadline beat it (up to the post-solve
    // check → completion-stamp window).
    for (unsigned c = 0; c < kClients; ++c) {
      for (PprFuture& future : futures[c]) {
        PprResult result;
        const Status status = future.Get(&result);
        if (status.ok()) {
          EXPECT_EQ(result.scores.size(), graph.num_nodes());
          continue;
        }
        EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||       // fault
                    status.code() == StatusCode::kDeadlineExceeded ||  // budget
                    status.code() == StatusCode::kCancelled)  // Cancel()/drain
            << status.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Lifecycle and shutdown
// ---------------------------------------------------------------------

TEST(ShardedLifecycleTest, SurfaceContracts) {
  const Graph& graph = SharedFixtures().general;

  {
    ShardedPprServerOptions clamped;
    clamped.shards = 0;
    ShardedPprServer server(clamped);
    EXPECT_EQ(server.num_shards(), 1u);
  }

  ShardedPprServerOptions options;
  options.shards = 2;
  options.shard.workers = 1;
  ShardedPprServer server(options);
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.Submit(PprQuery{}).ok()) << "Submit before Start";
  EXPECT_FALSE(server.Start().ok()) << "Start with no solver";

  EXPECT_EQ(server.AddSolver("no-such-solver", graph).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(server.AddSolver("fwdpush", graph).ok());
  EXPECT_FALSE(server.AddSolver("fwdpush", graph).ok()) << "duplicate spec";
  Rng rng(5);
  Graph other = BarabasiAlbert(60, 2, rng);
  EXPECT_FALSE(server.AddSolver("mc", other).ok())
      << "second graph with a different fingerprint";

  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.Start().ok()) << "Start twice";
  EXPECT_FALSE(server.AddSolver("mc", graph).ok()) << "AddSolver after Start";
  EXPECT_EQ(server.Submit(PprQuery{}, "mc").status().code(),
            StatusCode::kNotFound);

  EXPECT_EQ(server.partition().num_fragments(), 2u);
  EXPECT_EQ(server.partition().report().total_edges, graph.num_edges());
  EXPECT_EQ(server.solver_names(), std::vector<std::string>{"fwdpush"});

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.Submit(PprQuery{}).ok()) << "Submit after Stop";
  server.Stop();  // idempotent
}

TEST(ShardedLifecycleTest, BoundedDrainCompletesEveryScatterFuture) {
  const Graph& graph = SharedFixtures().general;
  ShardedPprServerOptions options;
  options.shards = 2;
  options.whole_vector = Routing::kScatterGather;
  options.mergers = 1;  // one merger: fan-outs genuinely queue up
  options.shard.workers = 1;
  ShardedPprServer server(options);
  ASSERT_TRUE(server.AddSolver("mc:eps=0.5", graph).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kQueries = 24;
  std::vector<PprFuture> futures;
  for (unsigned q = 0; q < kQueries; ++q) {
    PprQuery query;
    query.source = q % graph.num_nodes();
    auto submitted = server.Submit(query, {}, QuerySeed(12, q));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  server.Stop(std::chrono::milliseconds(1));

  for (PprFuture& future : futures) {
    ASSERT_TRUE(future.done()) << "bounded drain abandoned a fan-out";
    PprResult result;
    const Status status = future.Get(&result);
    EXPECT_TRUE(status.ok() || status.code() == StatusCode::kCancelled)
        << status.ToString();
  }
  const ShardedPprServerStats stats = server.stats();
  EXPECT_EQ(stats.fanned, kQueries);
  EXPECT_EQ(stats.merged + stats.fan_failed + stats.fan_shed +
                stats.fan_cancelled,
            stats.fanned);
  EXPECT_EQ(stats.total.completed + stats.total.failed + stats.total.shed +
                stats.total.cancelled,
            stats.total.submitted);
  EXPECT_EQ(stats.merge_queue_depth, 0u);
}

}  // namespace
}  // namespace ppr
