#include "bepi/bepi.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace ppr {
namespace {

TEST(BepiTest, MatchesDenseExactSolveAcrossZoo) {
  for (auto& tc : testing::SmallGraphZoo()) {
    tc.graph.BuildInAdjacency();
    BepiOptions options;
    options.slashburn.max_block = 16;
    auto solver = BepiSolver::Preprocess(tc.graph, options);
    for (NodeId source : {NodeId{0}, NodeId{1}}) {
      std::vector<double> estimate;
      solver->Solve(source, /*delta=*/1e-12, &estimate);
      std::vector<double> exact =
          testing::ExactPprDense(tc.graph, source, options.alpha);
      for (NodeId v = 0; v < tc.graph.num_nodes(); ++v) {
        ASSERT_NEAR(estimate[v], exact[v], 1e-8)
            << tc.name << " s=" << source << " v=" << v;
      }
    }
  }
}

TEST(BepiTest, SolutionIsAProbabilityVector) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  g.BuildInAdjacency();
  BepiOptions options;
  auto solver = BepiSolver::Preprocess(g, options);
  std::vector<double> estimate;
  solver->Solve(0, 1e-12, &estimate);
  EXPECT_NEAR(testing::Sum(estimate), 1.0, 1e-8);
  for (double v : estimate) EXPECT_GE(v, -1e-12);
}

TEST(BepiTest, DeadEndRescalingIsExact) {
  // PathGraph has a dead end; BePI's absorbing-system + rescale route
  // must still match the dead-end→source convention exactly.
  Graph g = PathGraph(6);
  g.BuildInAdjacency();
  BepiOptions options;
  options.slashburn.max_block = 2;
  auto solver = BepiSolver::Preprocess(g, options);
  std::vector<double> estimate;
  solver->Solve(0, 1e-13, &estimate);
  std::vector<double> exact = testing::ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_NEAR(estimate[v], exact[v], 1e-9) << "v=" << v;
  }
}

TEST(BepiTest, HubSourceQueriesWork) {
  // Query from the star center, which SlashBurn places in the hub block.
  Graph g = StarGraph(30);
  g.BuildInAdjacency();
  BepiOptions options;
  options.slashburn.hubs_per_round = 1;
  options.slashburn.max_block = 4;
  auto solver = BepiSolver::Preprocess(g, options);
  std::vector<double> estimate;
  solver->Solve(0, 1e-12, &estimate);
  std::vector<double> exact = testing::ExactPprDense(g, 0, options.alpha);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(estimate[v], exact[v], 1e-9);
  }
}

TEST(BepiTest, SmallerDeltaImprovesAccuracy) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  g.BuildInAdjacency();
  BepiOptions options;
  auto solver = BepiSolver::Preprocess(g, options);
  std::vector<double> exact = testing::ExactPprDense(g, 0, options.alpha);
  double prev = 1.0;
  for (double delta : {1e-2, 1e-5, 1e-9}) {
    std::vector<double> estimate;
    solver->Solve(0, delta, &estimate);
    double err = L1Distance(estimate, exact);
    EXPECT_LE(err, prev + 1e-12) << "delta=" << delta;
    prev = err;
  }
  EXPECT_LT(prev, 1e-6);
}

TEST(BepiTest, IterationCountsReported) {
  Graph g = testing::SmallGraphZoo()[6].graph;
  g.BuildInAdjacency();
  BepiOptions options;
  // Small blocks force a non-empty hub set so the Schur loop actually
  // iterates (otherwise the whole graph is one exactly-solved block).
  options.slashburn.max_block = 8;
  auto solver = BepiSolver::Preprocess(g, options);
  ASSERT_GT(solver->num_hubs(), 0u);
  std::vector<double> estimate;
  SolveStats coarse = solver->Solve(0, 1e-2, &estimate);
  SolveStats fine = solver->Solve(0, 1e-10, &estimate);
  EXPECT_GT(fine.iterations, coarse.iterations);
}

TEST(BepiTest, IndexAccounting) {
  Graph g = testing::SmallGraphZoo()[8].graph;
  g.BuildInAdjacency();
  BepiOptions options;
  auto solver = BepiSolver::Preprocess(g, options);
  EXPECT_GT(solver->IndexBytes(), 0u);
  EXPECT_GE(solver->preprocess_seconds(), 0.0);
  EXPECT_EQ(solver->num_spokes() + solver->num_hubs(), g.num_nodes());
}

TEST(BepiTest, MaxIterationsCapRespected) {
  Graph g = testing::SmallGraphZoo()[7].graph;
  g.BuildInAdjacency();
  BepiOptions options;
  options.max_iterations = 3;
  options.slashburn.max_block = 8;
  auto solver = BepiSolver::Preprocess(g, options);
  ASSERT_GT(solver->num_hubs(), 0u);
  std::vector<double> estimate;
  SolveStats stats = solver->Solve(0, 1e-300, &estimate);
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BepiDeathTest, RequiresInAdjacency) {
  Graph g = CycleGraph(8);
  BepiOptions options;
  EXPECT_DEATH(BepiSolver::Preprocess(g, options), "transpose");
}

}  // namespace
}  // namespace ppr
