// Ablation: node/storage ordering and PowerPush's sequential scans.
//
// §5 credits part of PowerPush's win to its storage format: nodes sorted
// by id with adjacency lists concatenated in the same order, which turns
// the dense-frontier phase into cache-friendly sequential sweeps. The
// effect of *which* ids nodes get is measurable: this bench re-times
// PowerPush and FIFO-FwdPush under the registry's order= layouts
// (degree-descending, BFS) against the original ids — and against an
// adversarial random relabeling, the one layout the registry
// deliberately does not offer (graph/permute.h supplies it). Emits
// BENCH_ablation_node_order.json.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/permute.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using namespace ppr;

double TimeSpec(const char* spec, const Graph& graph,
                const std::vector<NodeId>& sources, double lambda) {
  auto created = SolverRegistry::Global().Create(spec);
  PPR_CHECK(created.ok()) << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  Status prepared = solver->Prepare(graph);
  PPR_CHECK(prepared.ok()) << prepared.ToString();
  SolverContext context;
  PprQuery base;
  base.lambda = lambda;
  return Mean(TimePerQuery(*solver, context, sources, base));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: node relabeling vs scan locality",
      "PowerPush and FwdPush query time under different node-id\n"
      "assignments of the same graph (lambda = min(1e-8, 1/m)),\n"
      "via the registry's order= layouts.");

  const size_t query_count = BenchQueryCount(3);

  struct Row {
    const char* name;
    const char* power_spec;
    const char* fwd_spec;
  };
  // order= relabels inside Prepare and maps queries/results
  // transparently, so the same original-id sources serve every row.
  const std::vector<Row> rows = {
      {"original", "powerpush", "fwdpush"},
      {"degree-desc", "powerpush:order=degree", "fwdpush:order=degree"},
      {"bfs", "powerpush:order=bfs", "fwdpush:order=bfs"},
  };

  bench::BenchJsonWriter json("ablation_node_order");
  for (auto& named : LoadBenchDatasets(bench::kDefaultScale, /*max=*/4)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"ordering", "PowerPush(s)", "FwdPush(s)"});
    for (const Row& row : rows) {
      const double power = TimeSpec(row.power_spec, graph, sources, lambda);
      const double fwd = TimeSpec(row.fwd_spec, graph, sources, lambda);
      table.AddRow({row.name, HumanSeconds(power), HumanSeconds(fwd)});
      json.Add()
          .Str("dataset", named.name)
          .Str("ordering", row.name)
          .Num("lambda", lambda)
          .Num("powerpush_seconds", power)
          .Num("fwdpush_seconds", fwd);
    }
    {
      // Adversarial baseline: a random relabeling applied outside the
      // solver (the registry offers no order=random — it only helps
      // benchmarks), with sources mapped into the permuted id space.
      Rng rng(13);
      std::vector<NodeId> perm = RandomOrder(graph.num_nodes(), rng);
      Graph relabeled = PermuteGraph(graph, perm);
      std::vector<NodeId> mapped;
      mapped.reserve(sources.size());
      for (NodeId s : sources) mapped.push_back(perm[s]);
      const double power = TimeSpec("powerpush", relabeled, mapped, lambda);
      const double fwd = TimeSpec("fwdpush", relabeled, mapped, lambda);
      table.AddRow({"random", HumanSeconds(power), HumanSeconds(fwd)});
      json.Add()
          .Str("dataset", named.name)
          .Str("ordering", "random")
          .Num("lambda", lambda)
          .Num("powerpush_seconds", power)
          .Num("fwdpush_seconds", fwd);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected: orderings with locality (degree-desc, bfs) at "
              "or below 'random'; PowerPush less sensitive than FwdPush "
              "thanks to its sequential scans.\n");
  return 0;
}
