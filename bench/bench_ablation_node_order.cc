// Ablation: node/storage ordering and PowerPush's sequential scans.
//
// §5 credits part of PowerPush's win to its storage format: nodes sorted
// by id with adjacency lists concatenated in the same order, which turns
// the dense-frontier phase into cache-friendly sequential sweeps. The
// effect of *which* ids nodes get is measurable: this bench relabels
// each dataset by degree-descending, BFS and random orders and re-times
// PowerPush and FIFO-FwdPush.

#include <cstdio>

#include "bench_common.h"
#include "core/forward_push.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/permute.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using namespace ppr;

double TimePowerPush(const Graph& graph,
                     const std::vector<NodeId>& sources, double lambda) {
  PprEstimate estimate;
  auto times = TimePerQuery(sources, [&](NodeId s) {
    PowerPushOptions options;
    options.lambda = lambda;
    PowerPush(graph, s, options, &estimate);
  });
  return Mean(times);
}

double TimeFwdPush(const Graph& graph, const std::vector<NodeId>& sources,
                   double lambda) {
  PprEstimate estimate;
  auto times = TimePerQuery(sources, [&](NodeId s) {
    ForwardPushOptions options;
    options.rmax = lambda / static_cast<double>(graph.num_edges());
    FifoForwardPush(graph, s, options, &estimate);
  });
  return Mean(times);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: node relabeling vs scan locality",
      "PowerPush and FwdPush query time under different node-id\n"
      "assignments of the same graph (lambda = min(1e-8, 1/m)).");

  const size_t query_count = BenchQueryCount(3);

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale, /*max=*/4)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"ordering", "PowerPush(s)", "FwdPush(s)"});

    table.AddRow({"original", HumanSeconds(TimePowerPush(graph, sources, lambda)),
                  HumanSeconds(TimeFwdPush(graph, sources, lambda))});

    {
      std::vector<NodeId> perm = DegreeDescendingOrder(graph);
      Graph relabeled = PermuteGraph(graph, perm);
      std::vector<NodeId> mapped;
      for (NodeId s : sources) mapped.push_back(perm[s]);
      table.AddRow({"degree-desc",
                    HumanSeconds(TimePowerPush(relabeled, mapped, lambda)),
                    HumanSeconds(TimeFwdPush(relabeled, mapped, lambda))});
    }
    {
      std::vector<NodeId> perm = BfsOrder(graph, sources[0]);
      Graph relabeled = PermuteGraph(graph, perm);
      std::vector<NodeId> mapped;
      for (NodeId s : sources) mapped.push_back(perm[s]);
      table.AddRow({"bfs",
                    HumanSeconds(TimePowerPush(relabeled, mapped, lambda)),
                    HumanSeconds(TimeFwdPush(relabeled, mapped, lambda))});
    }
    {
      Rng rng(13);
      std::vector<NodeId> perm = RandomOrder(graph.num_nodes(), rng);
      Graph relabeled = PermuteGraph(graph, perm);
      std::vector<NodeId> mapped;
      for (NodeId s : sources) mapped.push_back(perm[s]);
      table.AddRow({"random",
                    HumanSeconds(TimePowerPush(relabeled, mapped, lambda)),
                    HumanSeconds(TimeFwdPush(relabeled, mapped, lambda))});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nExpected: orderings with locality (degree-desc, bfs) at "
              "or below 'random'; PowerPush less sensitive than FwdPush "
              "thanks to its sequential scans.\n");
  return 0;
}
