// Fused multi-source batch tier: time-per-query of one SolveMany block
// versus the same queries solved one by one, swept over the block size
// B, plus the served path (PprServer with max_batch coalescing). Emits
// BENCH_batch.json so the fusion win is trackable across commits.
//
// Expected shape: time_per_query_ms falls as B grows — a block of B
// sources shares one CSR traversal per sweep instead of paying B — and
// flattens once the block matrices outgrow cache. The served rows show
// the same trend, damped by queueing and per-query stamping overhead.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "api/batch_solver.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "serve/ppr_server.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace ppr;

  bench::PrintHeader(
      "Fused batch execution: time per query vs block size",
      "64 queries answered as blocks of B = 1, 4, 16, 64 through the\n"
      "fused multi-source kernel (powitr:batch=B), directly and through\n"
      "PprServer coalescing (max_batch=B, 2 workers). Best of 2 reps.");

  // The query count is fixed at 64 — exactly one fused call at the
  // largest block size — and deliberately ignores PPR_BENCH_QUERIES:
  // CI's smoke value of 1 could not exercise any batch > 1, and the
  // B-sweep is only meaningful when every B divides the workload.
  constexpr size_t kQueries = 64;
  const std::vector<size_t> kBatches = {1, 4, 16, 64};
  constexpr int kReps = 2;

  bench::BenchJsonWriter json("batch");

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max_count=*/2)) {
    Graph& graph = named.graph;
    std::printf("\n--- %s (n=%u, m=%llu, %zu queries) ---\n",
                named.paper_name.c_str(), graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()), kQueries);
    const auto sources = SampleQuerySources(graph, kQueries);
    std::vector<PprQuery> queries(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) queries[i].source = sources[i];

    TablePrinter table(
        {"mode", "batch", "wall(s)", "ms/query", "qps", "qps/worker"});
    auto emit = [&](const char* mode, size_t batch, unsigned workers,
                    double wall_seconds) {
      const double per_query_ms =
          wall_seconds * 1e3 / static_cast<double>(kQueries);
      const double qps = static_cast<double>(kQueries) / wall_seconds;
      char row[4][32];
      std::snprintf(row[0], sizeof(row[0]), "%.3f", wall_seconds);
      std::snprintf(row[1], sizeof(row[1]), "%.3f", per_query_ms);
      std::snprintf(row[2], sizeof(row[2]), "%.0f", qps);
      std::snprintf(row[3], sizeof(row[3]), "%.0f", qps / workers);
      table.AddRow({mode, std::to_string(batch), row[0], row[1], row[2],
                    row[3]});
      json.Add()
          .Str("dataset", named.name)
          .Str("solver", "powitr:batch=" + std::to_string(batch) +
                             ",lambda=1e-4")
          .Str("mode", mode)
          .Int("batch", batch)
          .Int("queries", kQueries)
          .Int("workers", workers)
          .Num("wall_seconds", wall_seconds)
          .Num("time_per_query_ms", per_query_ms)
          .Num("qps", qps)
          .Num("qps_per_worker", qps / workers);
    };

    for (size_t batch : kBatches) {
      const std::string spec =
          "powitr:batch=" + std::to_string(batch) + ",lambda=1e-4";

      // Direct fused solve: one caller, one context, blocks of B.
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      auto solver = std::move(created).ValueOrDie();
      PPR_CHECK_OK(solver->Prepare(graph));
      BatchSolver* fused = solver->AsBatch();
      PPR_CHECK(fused != nullptr);
      double fused_best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kReps; ++rep) {
        SolverContext context;
        std::vector<PprResult> results;
        Timer timer;
        PPR_CHECK_OK(fused->SolveMany(queries, context, &results));
        fused_best = std::min(fused_best, timer.ElapsedSeconds());
      }
      emit("fused", batch, /*workers=*/1, fused_best);

      // Served: the same spec behind PprServer coalescing. SolveBatch
      // keeps the queue full, so workers actually find neighbors to
      // drain whenever max_batch allows it.
      PprServerOptions options;
      options.workers = 2;
      options.queue_capacity = 128;
      options.max_batch = batch;
      PprServer server(options);
      PPR_CHECK_OK(server.AddSolver(spec, graph));
      PPR_CHECK_OK(server.Start());
      double served_best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<PprResult> results;
        Timer timer;
        PPR_CHECK_OK(server.SolveBatch(queries, &results));
        served_best = std::min(served_best, timer.ElapsedSeconds());
      }
      const uint64_t coalesced = server.Snapshot().coalesced;
      server.Stop();
      emit("served", batch, options.workers, served_best);
      if (batch > 1) {
        std::printf("  served batch=%zu: %llu of %llu queries coalesced\n",
                    batch, static_cast<unsigned long long>(coalesced),
                    static_cast<unsigned long long>(kQueries * kReps));
      }
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf(
      "\nExpected shape: fused ms/query strictly falls from B=1 to B=16\n"
      "(one adjacency pass amortized over the block); served rows follow\n"
      "with queueing overhead on top.\n");
  return 0;
}
