// Regenerates Figure 5 of the paper: actual l1-error versus execution
// time for PowerPush, PowItr and FIFO-FwdPush (checkpoints every 4m edge
// pushes, as in the paper), and for BePI a sweep of decreasing
// convergence deltas (it exposes no per-iteration hook, as in the paper).
//
// Expected shape: straight lines on log-y (exponential decay, matching
// O(m log 1/lambda)); PowerPush converges fastest.

#include <cstdio>

#include <cstdlib>

#include "bench_common.h"
#include "bepi/bepi.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "core/trace.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "eval/trace_export.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

void PrintTrace(const char* algo, const ppr::ConvergenceTrace& trace) {
  std::printf("  %-10s", algo);
  for (const auto& p : trace.points()) {
    std::printf(" (%.3fs, %.1e)", p.seconds, p.rsum);
  }
  std::printf("\n");
}

/// If PPR_BENCH_CSV_DIR is set, dump the series for external plotting.
void MaybeWriteCsv(const std::string& dataset,
                   const std::vector<ppr::TraceSeries>& series) {
  const char* dir = std::getenv("PPR_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/fig5_" + dataset + ".csv";
  ppr::Status status = ppr::WriteTracesCsv(path, series);
  if (!status.ok()) {
    std::fprintf(stderr, "csv export failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("  [csv written to %s]\n", path.c_str());
  }
}

}  // namespace

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 5: actual l1-error vs execution time",
      "Median query source; series = (seconds, l1-error) checkpoints\n"
      "every 4m edge pushes. BePI: one (time, error) point per delta.");

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    const NodeId source = SampleQuerySources(graph, 1)[0];
    const uint64_t interval = 4 * graph.num_edges();
    std::printf("\n--- %s (n=%u, m=%llu, lambda=%.1e, s=%u) ---\n",
                named.paper_name.c_str(), graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()), lambda,
                source);

    PprEstimate estimate;
    std::vector<TraceSeries> series;
    {
      ConvergenceTrace trace(interval);
      PowerPushOptions options;
      options.lambda = lambda;
      PowerPush(graph, source, options, &estimate, &trace);
      PrintTrace("PowerPush", trace);
      series.push_back({"PowerPush", trace.points()});
    }
    {
      ConvergenceTrace trace(interval);
      PowerIterationOptions options;
      options.lambda = lambda;
      PowerIteration(graph, source, options, &estimate, &trace);
      PrintTrace("PowItr", trace);
      series.push_back({"PowItr", trace.points()});
    }
    {
      ConvergenceTrace trace(interval);
      ForwardPushOptions options;
      options.rmax = lambda / static_cast<double>(graph.num_edges());
      FifoForwardPush(graph, source, options, &estimate, &trace);
      PrintTrace("FwdPush", trace);
      series.push_back({"FwdPush", trace.points()});
    }
    MaybeWriteCsv(named.name, series);
    {
      graph.BuildInAdjacency();
      BepiOptions options;
      auto bepi = BepiSolver::Preprocess(graph, options);
      std::vector<double> gt = ComputeGroundTruth(graph, source);
      std::printf("  %-10s", "BePI");
      double cumulative = 0.0;
      for (double delta : {1e-2, 1e-4, 1e-6, 1e-8, lambda}) {
        std::vector<double> out;
        Timer timer;
        bepi->Solve(source, delta, &out);
        cumulative += timer.ElapsedSeconds();
        std::printf(" (%.3fs, %.1e)", cumulative, L1Distance(out, gt));
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape: log-scale errors fall linearly with time "
              "(exponential convergence); PowerPush steepest.\n");
  return 0;
}
