// Regenerates Figure 5 of the paper: actual l1-error versus execution
// time for PowerPush, PowItr and FIFO-FwdPush (checkpoints every 4m edge
// pushes, as in the paper), and for BePI a sweep of decreasing
// convergence deltas (it exposes no per-iteration hook, as in the paper).
//
// Expected shape: straight lines on log-y (exponential decay, matching
// O(m log 1/lambda)); PowerPush converges fastest.
//
// The push competitors run through SolverRegistry with the convergence
// trace attached to the SolverContext.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "core/trace.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "eval/trace_export.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

void PrintTrace(const char* algo, const ppr::ConvergenceTrace& trace) {
  std::printf("  %-10s", algo);
  for (const auto& p : trace.points()) {
    std::printf(" (%.3fs, %.1e)", p.seconds, p.rsum);
  }
  std::printf("\n");
}

/// If PPR_BENCH_CSV_DIR is set, dump the series for external plotting.
void MaybeWriteCsv(const std::string& dataset,
                   const std::vector<ppr::TraceSeries>& series) {
  const char* dir = std::getenv("PPR_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/fig5_" + dataset + ".csv";
  ppr::Status status = ppr::WriteTracesCsv(path, series);
  if (!status.ok()) {
    std::fprintf(stderr, "csv export failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("  [csv written to %s]\n", path.c_str());
  }
}

}  // namespace

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 5: actual l1-error vs execution time",
      "Median query source; series = (seconds, l1-error) checkpoints\n"
      "every 4m edge pushes. BePI: one (time, error) point per delta.");

  const std::vector<std::pair<const char*, const char*>> tracers = {
      {"PowerPush", "powerpush"},
      {"PowItr", "powitr"},
      {"FwdPush", "fwdpush"},
  };
  bench::BenchJsonWriter json("fig5");

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    const NodeId source = SampleQuerySources(graph, 1)[0];
    const uint64_t interval = 4 * graph.num_edges();
    std::printf("\n--- %s (n=%u, m=%llu, lambda=%.1e, s=%u) ---\n",
                named.paper_name.c_str(), graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()), lambda,
                source);

    PprQuery query;
    query.source = source;
    query.lambda = lambda;

    std::vector<TraceSeries> series;
    for (const auto& [label, spec] : tracers) {
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      Status prepared = solver->Prepare(graph);
      PPR_CHECK(prepared.ok()) << label << ": " << prepared.ToString();
      ConvergenceTrace trace(interval);
      SolverContext context;
      context.set_trace(&trace);
      PprResult result;
      Status solved = solver->Solve(query, context, &result);
      PPR_CHECK(solved.ok()) << label << ": " << solved.ToString();
      PrintTrace(label, trace);
      for (const auto& point : trace.points()) {
        json.Add()
            .Str("dataset", named.name)
            .Str("solver", spec)
            .Num("seconds", point.seconds)
            .Num("rsum", point.rsum)
            .Int("edge_pushes", point.updates);
      }
      series.push_back({label, trace.points()});
    }
    MaybeWriteCsv(named.name, series);

    {
      graph.BuildInAdjacency();
      auto created = SolverRegistry::Global().Create("bepi");
      PPR_CHECK(created.ok());
      std::unique_ptr<Solver> bepi = std::move(created).ValueOrDie();
      Status prepared = bepi->Prepare(graph);
      PPR_CHECK(prepared.ok()) << "BePI: " << prepared.ToString();
      std::vector<double> gt = ComputeGroundTruth(graph, source);
      std::printf("  %-10s", "BePI");
      SolverContext context;
      PprResult result;
      double cumulative = 0.0;
      for (double delta : {1e-2, 1e-4, 1e-6, 1e-8, lambda}) {
        PprQuery bepi_query;
        bepi_query.source = source;
        bepi_query.lambda = delta;  // BePI reads lambda as its delta
        Timer timer;
        PPR_CHECK(bepi->Solve(bepi_query, context, &result).ok());
        cumulative += timer.ElapsedSeconds();
        const double l1 = L1Distance(result.scores, gt);
        std::printf(" (%.3fs, %.1e)", cumulative, l1);
        json.Add()
            .Str("dataset", named.name)
            .Str("solver", "bepi")
            .Num("delta", delta)
            .Num("seconds", cumulative)
            .Num("l1_error", l1);
      }
      std::printf("\n");
    }
  }
  json.Write();
  std::printf("\nExpected shape: log-scale errors fall linearly with time "
              "(exponential convergence); PowerPush steepest.\n");
  return 0;
}
