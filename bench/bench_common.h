#ifndef PPR_BENCH_BENCH_COMMON_H_
#define PPR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

// Shared conventions for the reproduction harness. Every binary:
//   * prints which paper table/figure it regenerates and the workload,
//   * honours PPR_BENCH_SCALE (dataset size multiplier),
//     PPR_BENCH_DATASETS (comma-separated subset) and PPR_BENCH_QUERIES
//     (#query sources),
//   * reports via ppr::TablePrinter so outputs diff cleanly.

namespace ppr {
namespace bench {

/// Default dataset scale for the harness: half of the registry's base
/// sizes keeps the full 9-binary sweep in single-digit minutes on a
/// laptop while preserving every qualitative shape. Override with
/// PPR_BENCH_SCALE.
inline constexpr double kDefaultScale = 0.5;

/// Smaller default for the approximate-query sweeps, whose per-query
/// Monte-Carlo budgets grow with n.
inline constexpr double kApproxScale = 0.25;

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace ppr

#endif  // PPR_BENCH_BENCH_COMMON_H_
