#ifndef PPR_BENCH_BENCH_COMMON_H_
#define PPR_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>
#include <vector>

// Shared conventions for the reproduction harness. Every binary:
//   * prints which paper table/figure it regenerates and the workload,
//   * honours PPR_BENCH_SCALE (dataset size multiplier),
//     PPR_BENCH_DATASETS (comma-separated subset) and PPR_BENCH_QUERIES
//     (#query sources),
//   * reports via ppr::TablePrinter so outputs diff cleanly,
//   * can emit a machine-readable BENCH_<name>.json via BenchJsonWriter
//     so perf trajectories are trackable across commits.

namespace ppr {
namespace bench {

/// Default dataset scale for the harness: half of the registry's base
/// sizes keeps the full 9-binary sweep in single-digit minutes on a
/// laptop while preserving every qualitative shape. Override with
/// PPR_BENCH_SCALE.
inline constexpr double kDefaultScale = 0.5;

/// Smaller default for the approximate-query sweeps, whose per-query
/// Monte-Carlo budgets grow with n.
inline constexpr double kApproxScale = 0.25;

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Accumulates flat records and writes them as BENCH_<name>.json into
/// PPR_BENCH_JSON_DIR (default: the working directory):
///
///   BenchJsonWriter json("scaling");
///   json.Add().Str("solver", "powitr").Int("threads", 4).Num("sec", t);
///   json.Write();   // -> {"bench": "scaling", "results": [{...}, ...]}
///
/// Fields keep insertion order; values are strings, doubles or integer
/// counters — all a perf dashboard needs.
class BenchJsonWriter {
 public:
  class Record {
   public:
    Record& Str(const char* key, const std::string& value) {
      fields_.emplace_back(key, "\"" + Escaped(value) + "\"");
      return *this;
    }
    Record& Num(const char* key, double value) {
      if (!std::isfinite(value)) {
        // Bare inf/nan tokens are not legal JSON.
        fields_.emplace_back(key, "null");
        return *this;
      }
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      fields_.emplace_back(key, buffer);
      return *this;
    }
    Record& Int(const char* key, uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }

    std::string ToJson() const {
      std::string out = "{";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + fields_[i].first + "\": " + fields_[i].second;
      }
      return out + "}";
    }

   private:
    static std::string Escaped(const std::string& text) {
      std::string out;
      out.reserve(text.size());
      for (char c : text) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
          continue;
        }
        out += c;
      }
      return out;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// The returned reference stays valid across later Add() calls
  /// (records_ is a deque, not a vector).
  Record& Add() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes BENCH_<name>.json; returns the path, or "" when the file
  /// cannot be written (reported on stderr, never fatal — the stdout
  /// table remains the primary artifact).
  std::string Write() const {
    const char* dir = std::getenv("PPR_BENCH_JSON_DIR");
    const std::string path = std::string(dir != nullptr ? dir : ".") +
                             "/BENCH_" + bench_name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return "";
    }
    std::fprintf(out, "{\"bench\": \"%s\", \"results\": [", bench_name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(out, "%s\n  %s", i > 0 ? "," : "",
                   records_[i].ToJson().c_str());
    }
    std::fprintf(out, "\n]}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
    return path;
  }

 private:
  std::string bench_name_;
  std::deque<Record> records_;
};

}  // namespace bench
}  // namespace ppr

#endif  // PPR_BENCH_BENCH_COMMON_H_
