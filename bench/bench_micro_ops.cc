// google-benchmark microbenches for the primitives underneath every
// result in the paper: push operations (queue vs sequential scan — the
// core §5 trade-off), random-walk steps, SpMV, and walk-index lookups.

#include <benchmark/benchmark.h>

#include <cmath>

#include "approx/random_walk.h"
#include "approx/walk_index.h"
#include "bepi/sparse_matrix.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "graph/datasets.h"
#include "util/rng.h"

namespace ppr {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    return new Graph(MakeDataset(FindDataset("pokec-sim"), /*scale=*/0.25));
  }();
  return *graph;
}

void BM_FifoForwardPush(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const double lambda = std::pow(10.0, -static_cast<double>(state.range(0)));
  PprEstimate estimate;
  uint64_t pushes = 0;
  for (auto _ : state) {
    ForwardPushOptions options;
    options.rmax = lambda / static_cast<double>(g.num_edges());
    pushes += FifoForwardPush(g, 0, options, &estimate).edge_pushes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(pushes));
}
BENCHMARK(BM_FifoForwardPush)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PowerIteration(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const double lambda = std::pow(10.0, -static_cast<double>(state.range(0)));
  PprEstimate estimate;
  uint64_t pushes = 0;
  for (auto _ : state) {
    PowerIterationOptions options;
    options.lambda = lambda;
    pushes += PowerIteration(g, 0, options, &estimate).edge_pushes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(pushes));
}
BENCHMARK(BM_PowerIteration)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PowerPush(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const double lambda = std::pow(10.0, -static_cast<double>(state.range(0)));
  PprEstimate estimate;
  uint64_t pushes = 0;
  for (auto _ : state) {
    PowerPushOptions options;
    options.lambda = lambda;
    pushes += PowerPush(g, 0, options, &estimate).edge_pushes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(pushes));
}
BENCHMARK(BM_PowerPush)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_RandomWalk(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(1);
  uint64_t steps = 0;
  for (auto _ : state) {
    WalkOutcome outcome =
        RandomWalk(g, static_cast<NodeId>(rng.NextBounded(g.num_nodes())),
                   0.2, rng);
    benchmark::DoNotOptimize(outcome.stop);
    steps += outcome.steps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_RandomWalk);

void BM_WalkIndexLookup(benchmark::State& state) {
  const Graph& g = BenchGraph();
  static const WalkIndex* index = [&] {
    Rng rng(2);
    return new WalkIndex(
        WalkIndex::Build(g, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, rng));
  }();
  Rng rng(3);
  for (auto _ : state) {
    auto span =
        index->Endpoints(static_cast<NodeId>(rng.NextBounded(g.num_nodes())));
    benchmark::DoNotOptimize(span.data());
  }
}
BENCHMARK(BM_WalkIndexLookup);

void BM_SpMV(benchmark::State& state) {
  const Graph& g = BenchGraph();
  static const CsrMatrix* matrix = [&] {
    std::vector<Triplet> triplets;
    triplets.reserve(g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const NodeId d = g.OutDegree(u);
      for (NodeId v : g.OutNeighbors(u)) {
        triplets.push_back({v, u, -0.8 / d});
      }
    }
    return new CsrMatrix(
        CsrMatrix::FromTriplets(g.num_nodes(), g.num_nodes(), triplets));
  }();
  std::vector<double> x(g.num_nodes(), 1.0 / g.num_nodes());
  std::vector<double> y(g.num_nodes());
  for (auto _ : state) {
    matrix->Multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(matrix->nnz()));
}
BENCHMARK(BM_SpMV)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppr

BENCHMARK_MAIN();
