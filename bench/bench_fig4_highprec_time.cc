// Regenerates Figure 4 of the paper: average high-precision query time
// per dataset for PowerPush, BePI, FIFO-FwdPush and PowItr, with the
// "c.cx" multiplier over PowerPush that the paper annotates on each bar.
//
// Expected shape: PowerPush fastest (or tied) everywhere; BePI
// competitive only on the smallest dataset despite its preprocessing;
// PowItr ~ FIFO-FwdPush.
//
// All four competitors dispatch through SolverRegistry — no algorithm
// headers, one timing loop.

#include <cstdio>
#include <memory>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 4: high-precision query time vs dataset",
      "lambda = min(1e-8, 1/m); BePI convergence delta set to the same\n"
      "value (its time is thus an underestimate, as in the paper).");

  const size_t query_count = BenchQueryCount(3);
  const std::vector<std::pair<const char*, const char*>> competitors = {
      {"PowerPush", "powerpush"},
      {"BePI", "bepi"},
      {"FwdPush", "fwdpush"},
      {"PowItr", "powitr"},
  };

  TablePrinter table({"Dataset", "PowerPush(s)", "BePI(s)", "FwdPush(s)",
                      "PowItr(s)", "BePI x", "FwdPush x", "PowItr x"});
  bench::BenchJsonWriter json("fig4");

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    graph.BuildInAdjacency();  // BePI preprocessing needs the transpose

    PprQuery base;
    base.lambda = lambda;

    std::vector<double> means;
    for (const auto& [label, spec] : competitors) {
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      Status prepared = solver->Prepare(graph);  // BePI: index build
      PPR_CHECK(prepared.ok()) << label << ": " << prepared.ToString();
      SolverContext context;
      means.push_back(Mean(TimePerQuery(*solver, context, sources, base)));
      json.Add()
          .Str("dataset", named.name)
          .Str("solver", spec)
          .Num("lambda", lambda)
          .Int("queries", sources.size())
          .Num("mean_seconds", means.back());
    }

    const double pp = means[0];
    auto ratio = [pp](double t) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fx", t / pp);
      return std::string(buf);
    };
    table.AddRow({named.paper_name, HumanSeconds(means[0]),
                  HumanSeconds(means[1]), HumanSeconds(means[2]),
                  HumanSeconds(means[3]), ratio(means[1]), ratio(means[2]),
                  ratio(means[3])});
  }
  std::printf("%s\n", table.ToString().c_str());
  json.Write();
  std::printf("Expected shape: PowerPush <= all competitors; BePI's "
              "preprocessing cost is NOT included (see Table 2).\n");
  return 0;
}
