// Regenerates Figure 4 of the paper: average high-precision query time
// per dataset for PowerPush, BePI, FIFO-FwdPush and PowItr, with the
// "c.cx" multiplier over PowerPush that the paper annotates on each bar.
//
// Expected shape: PowerPush fastest (or tied) everywhere; BePI
// competitive only on the smallest dataset despite its preprocessing;
// PowItr ~ FIFO-FwdPush.

#include <cstdio>

#include "bench_common.h"
#include "bepi/bepi.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 4: high-precision query time vs dataset",
      "lambda = min(1e-8, 1/m); BePI convergence delta set to the same\n"
      "value (its time is thus an underestimate, as in the paper).");

  const size_t query_count = BenchQueryCount(3);
  TablePrinter table({"Dataset", "PowerPush(s)", "BePI(s)", "FwdPush(s)",
                      "PowItr(s)", "BePI x", "FwdPush x", "PowItr x"});

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);

    graph.BuildInAdjacency();
    BepiOptions bepi_options;
    auto bepi = BepiSolver::Preprocess(graph, bepi_options);

    PprEstimate estimate;
    std::vector<double> bepi_out;

    auto power_push_times = TimePerQuery(sources, [&](NodeId s) {
      PowerPushOptions options;
      options.lambda = lambda;
      PowerPush(graph, s, options, &estimate);
    });
    auto bepi_times = TimePerQuery(sources, [&](NodeId s) {
      bepi->Solve(s, lambda, &bepi_out);
    });
    auto fwd_times = TimePerQuery(sources, [&](NodeId s) {
      ForwardPushOptions options;
      options.rmax = lambda / static_cast<double>(graph.num_edges());
      FifoForwardPush(graph, s, options, &estimate);
    });
    auto powitr_times = TimePerQuery(sources, [&](NodeId s) {
      PowerIterationOptions options;
      options.lambda = lambda;
      PowerIteration(graph, s, options, &estimate);
    });

    const double pp = Mean(power_push_times);
    const double be = Mean(bepi_times);
    const double fp = Mean(fwd_times);
    const double pi = Mean(powitr_times);
    auto ratio = [pp](double t) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fx", t / pp);
      return std::string(buf);
    };
    table.AddRow({named.paper_name, HumanSeconds(pp), HumanSeconds(be),
                  HumanSeconds(fp), HumanSeconds(pi), ratio(be), ratio(fp),
                  ratio(pi)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: PowerPush <= all competitors; BePI's "
              "preprocessing cost is NOT included (see Table 2).\n");
  return 0;
}
