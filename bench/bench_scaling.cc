// Thread-scaling and storage-layout bench for the parallel hot paths:
//
//   1. the shared Monte-Carlo walk phase (ResidueWalkPhase) on a
//      SpeedPPR-shaped residue fixture,
//   2. the PowItr dense iteration kernel,
//   3. registry end-to-end time per query for speedppr/powitr at each
//      threads= setting,
//   4. the order= CSR layouts (none/degree/bfs) for powerpush and
//      speedppr.
//
// Expected shape: near-linear walk-phase scaling (independent per-node
// streams, balanced chunks) and >=2x PowItr at 4 threads on >=4 cores;
// degree/BFS layouts help on hub-heavy graphs. Emits BENCH_scaling.json
// (PPR_BENCH_JSON_DIR) to seed the perf trajectory.
//
// Workload: one generated Barabasi-Albert graph, ~1M edges at the
// default scale (PPR_BENCH_SCALE multiplies the node count).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "approx/monte_carlo.h"
#include "approx/residue_walks.h"
#include "bench_common.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Thread scaling: walk phase, PowItr kernel, order= layouts",
      "Generated BA graph (~1M edges at scale 1). threads=1 is the\n"
      "serial baseline; the walk phase is bit-identical across thread\n"
      "counts, the dense kernels to ~1e-12.");

  const NodeId nodes = static_cast<NodeId>(125000 * BenchScaleFromEnv());
  Rng graph_rng(7);
  Graph graph = BarabasiAlbert(nodes, 8, graph_rng);
  const NodeId n = graph.num_nodes();
  const EdgeId m = graph.num_edges();
  std::printf("graph: n=%s m=%s (hardware threads: %u)\n\n",
              HumanCount(n).c_str(), HumanCount(m).c_str(),
              ParallelThreadCount());

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  const double alpha = 0.2;
  const double eps = 0.5;
  const NodeId source = SampleQuerySources(graph, 1, 5)[0];
  bench::BenchJsonWriter json("scaling");

  // ---- 1. Walk phase on the SpeedPPR residue fixture. ----------------
  // Phase 1 (PowerPush to lambda = m/W plus the O(m) refinement) runs
  // once outside the timed region; the fixture guarantees W_v <= d_v,
  // i.e. at most m walks — the workload every SpeedPPR query pays.
  const uint64_t w = ChernoffWalkCount(n, eps, 1.0 / n);
  PprEstimate fixture;
  fixture.Reset(n, source);
  {
    PowerPushOptions options;
    options.alpha = alpha;
    options.lambda = static_cast<double>(m) / static_cast<double>(w);
    PowerPush(graph, source, options, &fixture);
    FifoForwardPushRefine(graph, source, alpha, 1.0 / static_cast<double>(w),
                          &fixture);
  }

  TablePrinter walk_table({"threads", "walk phase (s)", "speedup", "walks"});
  double walk_serial = 0.0;
  for (unsigned threads : thread_counts) {
    constexpr int kReps = 3;
    double best = 1e100;
    uint64_t walks = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<double> out(n, 0.0);
      SolveStats stats;
      Rng rng(42);
      Timer timer;
      ResidueWalkPhase(graph, fixture.residue, w, alpha, rng,
                       /*index=*/nullptr, &out, &stats, threads);
      best = std::min(best, timer.ElapsedSeconds());
      walks = stats.random_walks;
    }
    if (threads == 1) walk_serial = best;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", walk_serial / best);
    walk_table.AddRow({std::to_string(threads), HumanSeconds(best), speedup,
                       HumanCount(walks)});
    json.Add()
        .Str("section", "walk_phase")
        .Int("threads", threads)
        .Num("seconds", best)
        .Num("speedup", walk_serial / best)
        .Int("walks", walks);
  }
  std::printf("%s\n", walk_table.ToString().c_str());

  // ---- 2. PowItr dense kernel. ---------------------------------------
  TablePrinter powitr_table({"threads", "PowItr (s)", "speedup", "iters"});
  double powitr_serial = 0.0;
  for (unsigned threads : thread_counts) {
    PowerIterationOptions options;
    options.alpha = alpha;
    options.lambda = 1e-8;
    options.threads = threads;
    PprEstimate estimate;
    Timer timer;
    SolveStats stats = PowerIteration(graph, source, options, &estimate);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) powitr_serial = seconds;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", powitr_serial / seconds);
    powitr_table.AddRow({std::to_string(threads), HumanSeconds(seconds),
                         speedup, std::to_string(stats.iterations)});
    json.Add()
        .Str("section", "powitr_kernel")
        .Int("threads", threads)
        .Num("seconds", seconds)
        .Num("speedup", powitr_serial / seconds)
        .Int("iterations", stats.iterations);
  }
  std::printf("%s\n", powitr_table.ToString().c_str());

  // ---- 3. Registry end-to-end time per query. ------------------------
  const auto sources = SampleQuerySources(graph, BenchQueryCount(2), 3);
  TablePrinter e2e_table({"solver spec", "time/query (s)", "speedup"});
  for (const char* base_spec : {"speedppr:eps=0.5", "powitr"}) {
    double serial = 0.0;
    for (unsigned threads : thread_counts) {
      const std::string spec =
          std::string(base_spec) +
          (std::string(base_spec).find(':') == std::string::npos ? ":" : ",") +
          "threads=" + std::to_string(threads);
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      PPR_CHECK(solver->Prepare(graph).ok());
      SolverContext context;
      const double mean = Mean(TimePerQuery(*solver, context, sources));
      if (threads == 1) serial = mean;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", serial / mean);
      e2e_table.AddRow({spec, HumanSeconds(mean), speedup});
      json.Add()
          .Str("section", "end_to_end")
          .Str("spec", spec)
          .Int("threads", threads)
          .Num("seconds", mean)
          .Num("speedup", serial / mean);
    }
  }
  std::printf("%s\n", e2e_table.ToString().c_str());

  // ---- 4. order= storage layouts. ------------------------------------
  TablePrinter layout_table({"solver", "order", "time/query (s)", "vs none"});
  for (const char* solver_name : {"powerpush", "speedppr"}) {
    double baseline = 0.0;
    for (const char* order : {"none", "degree", "bfs"}) {
      const std::string spec =
          std::string(solver_name) + ":order=" + order;
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      PPR_CHECK(solver->Prepare(graph).ok());
      SolverContext context;
      const double mean = Mean(TimePerQuery(*solver, context, sources));
      if (baseline == 0.0) baseline = mean;
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2fx", baseline / mean);
      layout_table.AddRow({solver_name, order, HumanSeconds(mean), ratio});
      json.Add()
          .Str("section", "layout")
          .Str("solver", solver_name)
          .Str("order", order)
          .Num("seconds", mean)
          .Num("vs_none", baseline / mean);
    }
  }
  std::printf("%s\n", layout_table.ToString().c_str());

  json.Write();
  return 0;
}
