// Regenerates Figure 6 of the paper: actual l1-error versus the number
// of residue updates (edge pushes) for PowerPush, PowItr and
// FIFO-FwdPush. BePI is excluded, exactly as in the paper ("we have no
// access to the operation number during its execution").
//
// Every solver dispatches through SolverRegistry (the trace hook rides
// on SolverContext), and the checkpoint series is emitted as
// BENCH_fig6.json so convergence trajectories are trackable across
// commits.
//
// Expected shape: FwdPush's asynchronous pushes are more effective per
// update than PowItr's simultaneous ones; PowerPush needs the fewest
// updates thanks to the dynamic threshold.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "core/trace.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"

namespace {

using namespace ppr;

void PrintTrace(const char* algo, const ConvergenceTrace& trace) {
  std::printf("  %-10s", algo);
  for (const auto& p : trace.points()) {
    std::printf(" (%.2e, %.1e)", static_cast<double>(p.updates), p.rsum);
  }
  std::printf("\n");
}

/// One registry-dispatched solve with a convergence trace attached;
/// returns total edge pushes and appends one JSON record per checkpoint.
uint64_t TraceSolve(const std::string& spec, const char* label,
                    const Graph& graph, NodeId source, double lambda,
                    uint64_t interval, const std::string& dataset,
                    bench::BenchJsonWriter& json) {
  auto created = SolverRegistry::Global().Create(spec);
  PPR_CHECK(created.ok()) << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  PPR_CHECK(solver->Prepare(graph).ok());

  ConvergenceTrace trace(interval);
  SolverContext context;
  context.set_trace(&trace);
  PprQuery query;
  query.source = source;
  query.lambda = lambda;
  PprResult result;
  Status solved = solver->Solve(query, context, &result);
  PPR_CHECK(solved.ok()) << solved.ToString();
  PrintTrace(label, trace);
  for (const auto& p : trace.points()) {
    json.Add()
        .Str("dataset", dataset)
        .Str("solver", label)
        .Int("updates", p.updates)
        .Num("rsum", p.rsum);
  }
  return result.stats.edge_pushes;
}

}  // namespace

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 6: actual l1-error vs #residue updates",
      "Median query source; series = (#edge pushes, l1-error)\n"
      "checkpoints every 4m pushes; summary = total updates to lambda.\n"
      "All solvers dispatched via SolverRegistry.");

  bench::BenchJsonWriter json("fig6");
  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    const NodeId source = SampleQuerySources(graph, 1)[0];
    const uint64_t interval = 4 * graph.num_edges();
    std::printf("\n--- %s (m=%llu) ---\n", named.paper_name.c_str(),
                static_cast<unsigned long long>(graph.num_edges()));

    const uint64_t pp_updates =
        TraceSolve("powerpush", "PowerPush", graph, source, lambda, interval,
                   named.paper_name, json);
    const uint64_t pi_updates =
        TraceSolve("powitr", "PowItr", graph, source, lambda, interval,
                   named.paper_name, json);
    // fwdpush derives rmax = lambda / m from the query's lambda — the
    // same operating point the print-only bench configured by hand.
    const uint64_t fp_updates =
        TraceSolve("fwdpush", "FwdPush", graph, source, lambda, interval,
                   named.paper_name, json);

    std::printf("  totals: PowerPush=%.2e  PowItr=%.2e  FwdPush=%.2e "
                "(PowItr/PowerPush=%.2f, FwdPush/PowerPush=%.2f)\n",
                static_cast<double>(pp_updates),
                static_cast<double>(pi_updates),
                static_cast<double>(fp_updates),
                static_cast<double>(pi_updates) / pp_updates,
                static_cast<double>(fp_updates) / pp_updates);
    json.Add()
        .Str("dataset", named.paper_name)
        .Str("solver", "totals")
        .Int("powerpush_updates", pp_updates)
        .Int("powitr_updates", pi_updates)
        .Int("fwdpush_updates", fp_updates)
        .Num("lambda", lambda);
  }
  json.Write();
  std::printf("\nExpected shape: PowerPush needs the fewest updates; "
              "FwdPush beats PowItr per update (asynchronous pushes).\n");
  return 0;
}
