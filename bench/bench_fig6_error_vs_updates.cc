// Regenerates Figure 6 of the paper: actual l1-error versus the number
// of residue updates (edge pushes) for PowerPush, PowItr and
// FIFO-FwdPush. BePI is excluded, exactly as in the paper ("we have no
// access to the operation number during its execution").
//
// Expected shape: FwdPush's asynchronous pushes are more effective per
// update than PowItr's simultaneous ones; PowerPush needs the fewest
// updates thanks to the dynamic threshold.

#include <cstdio>

#include "bench_common.h"
#include "core/forward_push.h"
#include "core/power_iteration.h"
#include "core/power_push.h"
#include "core/trace.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"

namespace {

void PrintTrace(const char* algo, const ppr::ConvergenceTrace& trace) {
  std::printf("  %-10s", algo);
  for (const auto& p : trace.points()) {
    std::printf(" (%.2e, %.1e)", static_cast<double>(p.updates), p.rsum);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 6: actual l1-error vs #residue updates",
      "Median query source; series = (#edge pushes, l1-error)\n"
      "checkpoints every 4m pushes; summary = total updates to lambda.");

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    const NodeId source = SampleQuerySources(graph, 1)[0];
    const uint64_t interval = 4 * graph.num_edges();
    std::printf("\n--- %s (m=%llu) ---\n", named.paper_name.c_str(),
                static_cast<unsigned long long>(graph.num_edges()));

    PprEstimate estimate;
    uint64_t pp_updates;
    uint64_t pi_updates;
    uint64_t fp_updates;
    {
      ConvergenceTrace trace(interval);
      PowerPushOptions options;
      options.lambda = lambda;
      pp_updates =
          PowerPush(graph, source, options, &estimate, &trace).edge_pushes;
      PrintTrace("PowerPush", trace);
    }
    {
      ConvergenceTrace trace(interval);
      PowerIterationOptions options;
      options.lambda = lambda;
      pi_updates = PowerIteration(graph, source, options, &estimate, &trace)
                       .edge_pushes;
      PrintTrace("PowItr", trace);
    }
    {
      ConvergenceTrace trace(interval);
      ForwardPushOptions options;
      options.rmax = lambda / static_cast<double>(graph.num_edges());
      fp_updates =
          FifoForwardPush(graph, source, options, &estimate, &trace)
              .edge_pushes;
      PrintTrace("FwdPush", trace);
    }
    std::printf("  totals: PowerPush=%.2e  PowItr=%.2e  FwdPush=%.2e "
                "(PowItr/PowerPush=%.2f, FwdPush/PowerPush=%.2f)\n",
                static_cast<double>(pp_updates),
                static_cast<double>(pi_updates),
                static_cast<double>(fp_updates),
                static_cast<double>(pi_updates) / pp_updates,
                static_cast<double>(fp_updates) / pp_updates);
  }
  std::printf("\nExpected shape: PowerPush needs the fewest updates; "
              "FwdPush beats PowItr per update (asynchronous pushes).\n");
  return 0;
}
