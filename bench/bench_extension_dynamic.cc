// Extension bench (beyond the paper's figures): evolving-graph PPR.
//
// §7 cites a line of work on PPR over dynamic graphs; this bench
// quantifies what the incremental "dynfwdpush" solver buys over serving
// stale results or re-solving from scratch, on a mixed insert/delete
// stream (eval/query_gen's generator) applied in chunks through the
// DynamicSolver interface. Per chunk it reports
//
//   * staleness — l1 drift of the frozen epoch-0 answer from the truth
//     on the current snapshot (what a non-updating server serves),
//   * tracker_err — l1 error of the incrementally repaired estimate
//     (stays within the advertised bound),
//   * repair cost (pushes, seconds) vs a from-scratch FwdPush solve.
//
// Emits BENCH_dynamic.json with the full staleness-vs-repair-cost
// curves.

#include <cstdio>
#include <memory>
#include <vector>

#include "api/context.h"
#include "api/dynamic_solver.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Extension: incremental PPR under an insert/delete stream",
      "dynfwdpush (via SolverRegistry) repaired in chunks vs the frozen\n"
      "epoch-0 answer and a from-scratch FwdPush at the same rmax.\n"
      "Stream: 200 updates, 25% deletions, skew 0.5.");

  constexpr size_t kUpdates = 200;
  constexpr size_t kChunks = 8;
  bench::BenchJsonWriter json("dynamic");
  TablePrinter table({"Dataset", "staleness", "tracker err", "bound",
                      "repair(s)/chunk", "scratch(s)", "pushes/chunk"});

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max=*/4)) {
    Graph& graph = named.graph;
    const NodeId source = SampleQuerySources(graph, 1)[0];
    char rmax_spec[64];
    const double rmax = 1e-4 / static_cast<double>(graph.num_edges());
    std::snprintf(rmax_spec, sizeof(rmax_spec), "dynfwdpush:rmax=%.3e", rmax);

    auto created = SolverRegistry::Global().Create(rmax_spec);
    PPR_CHECK(created.ok()) << created.status().ToString();
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    PPR_CHECK(solver->Prepare(graph).ok());
    DynamicSolver* dynamic = solver->AsDynamic();
    PPR_CHECK(dynamic != nullptr);

    SolverContext context;
    PprQuery query;
    query.source = source;
    PprResult epoch0;
    PPR_CHECK(solver->Solve(query, context, &epoch0).ok());

    // The from-scratch reference runs at the same rmax (rmax·m = the
    // lambda of an equivalent fwdpush).
    char scratch_spec[64];
    std::snprintf(scratch_spec, sizeof(scratch_spec), "fwdpush:rmax=%.3e",
                  rmax);

    UpdateWorkloadOptions workload;
    workload.count = kUpdates;
    workload.delete_fraction = 0.25;
    workload.skew = 0.5;
    UpdateBatch stream = GenerateUpdateStream(graph, workload);

    double staleness = 0.0, tracker_err = 0.0, scratch_seconds = 0.0;
    double repair_seconds_total = 0.0;
    uint64_t repair_pushes_total = 0;
    for (size_t c = 0; c < kChunks; ++c) {
      UpdateBatch chunk;
      const size_t begin = c * stream.size() / kChunks;
      const size_t end = (c + 1) * stream.size() / kChunks;
      chunk.updates.assign(stream.updates.begin() + begin,
                           stream.updates.begin() + end);
      UpdateStats stats;
      Status applied = dynamic->ApplyUpdates(chunk, &stats);
      PPR_CHECK(applied.ok()) << applied.ToString();
      repair_seconds_total += stats.seconds;
      repair_pushes_total += stats.push_operations;

      PprResult repaired;
      PPR_CHECK(solver->Solve(query, context, &repaired).ok());

      // Truth on the current snapshot, from scratch via the registry.
      Graph snapshot = dynamic->Snapshot();
      auto scratch_created = SolverRegistry::Global().Create(scratch_spec);
      PPR_CHECK(scratch_created.ok());
      std::unique_ptr<Solver> scratch =
          std::move(scratch_created).ValueOrDie();
      PPR_CHECK(scratch->Prepare(snapshot).ok());
      SolverContext scratch_context;
      PprResult truth;
      Timer scratch_timer;
      PPR_CHECK(scratch->Solve(query, scratch_context, &truth).ok());
      scratch_seconds = scratch_timer.ElapsedSeconds();

      staleness = L1Distance(epoch0.scores, truth.scores);
      tracker_err = L1Distance(repaired.scores, truth.scores);
      json.Add()
          .Str("dataset", named.paper_name)
          .Int("epoch", stats.epoch)
          .Int("chunk", c + 1)
          .Num("staleness", staleness)
          .Num("tracker_err", tracker_err)
          .Num("bound", repaired.l1_bound)
          .Int("repair_pushes", stats.push_operations)
          .Num("repair_seconds", stats.seconds)
          .Num("scratch_seconds", scratch_seconds);
    }

    char stale_buf[32], err_buf[32], bound_buf[32], pushes_buf[32];
    std::snprintf(stale_buf, sizeof(stale_buf), "%.2e", staleness);
    std::snprintf(err_buf, sizeof(err_buf), "%.2e", tracker_err);
    PprResult final_result;
    PPR_CHECK(solver->Solve(query, context, &final_result).ok());
    std::snprintf(bound_buf, sizeof(bound_buf), "%.1e",
                  final_result.l1_bound);
    std::snprintf(pushes_buf, sizeof(pushes_buf), "%llu",
                  static_cast<unsigned long long>(repair_pushes_total /
                                                  kChunks));
    table.AddRow({named.paper_name, stale_buf, err_buf, bound_buf,
                  HumanSeconds(repair_seconds_total / kChunks),
                  HumanSeconds(scratch_seconds), pushes_buf});
  }
  std::printf("%s\n", table.ToString().c_str());
  json.Write();
  std::printf("Expected: staleness grows with the stream while the "
              "repaired estimate stays within its bound, at a per-chunk "
              "cost far below a from-scratch solve.\n");
  return 0;
}
