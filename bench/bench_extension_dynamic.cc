// Extension bench (beyond the paper's figures): evolving-graph PPR.
//
// §7 cites a line of work on PPR over dynamic graphs; this bench
// quantifies what the incremental dynamic tier buys over serving stale
// results or rebuilding, for all three registered dynamic solvers —
// the exact "dynfwdpush" and the walk-index approximate tier
// "dynfora"/"dynspeedppr" — on a mixed insert/delete stream
// (eval/query_gen's generator) applied in chunks through the
// DynamicSolver interface. Per (solver, chunk) it reports
//
//   * staleness — l1 drift of the frozen epoch-0 answer from the truth
//     on the current snapshot (what a non-updating server serves),
//   * tracker_err — l1 error of the incrementally repaired estimate
//     (stays within the advertised bound),
//   * repair cost (pushes, walks resampled, seconds) vs re-preparing
//     the same solver from scratch on the current snapshot — the
//     rebuild ApplyUpdates replaces (for the walk-index tier that
//     rebuild includes the full index).
//
// Emits BENCH_dynamic.json with the staleness-vs-refresh-cost curves
// for every solver.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/dynamic_solver.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/dynamic_graph.h"
#include "util/string_utils.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace ppr;

std::unique_ptr<Solver> MustCreate(const std::string& spec) {
  auto created = SolverRegistry::Global().Create(spec);
  PPR_CHECK(created.ok()) << created.status().ToString();
  return std::move(created).ValueOrDie();
}

// Staleness of the frozen epoch-0 answer against a truth vector whose
// graph may have grown since: a non-updating server scores absent nodes
// at zero, so the frozen vector is compared zero-padded to the truth's
// dimension.
double FrozenL1(const std::vector<double>& frozen,
                const std::vector<double>& truth) {
  std::vector<double> padded = frozen;
  padded.resize(truth.size(), 0.0);
  return L1Distance(padded, truth);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: incremental PPR under an insert/delete stream",
      "dynfwdpush / dynfora / dynspeedppr (via SolverRegistry) repaired\n"
      "in chunks vs the frozen epoch-0 answer and a from-scratch\n"
      "re-Prepare of the same solver on the current snapshot.\n"
      "Stream: 200 updates, 25% deletions, skew 0.5, plus node\n"
      "additions/removals (5%/2%) exercising graph resize.");

  constexpr size_t kUpdates = 200;
  constexpr size_t kChunks = 8;
  bench::BenchJsonWriter json("dynamic");
  TablePrinter table({"Dataset", "Solver", "staleness", "tracker err",
                      "bound", "repair(s)/chunk", "reprepare(s)",
                      "pushes/chunk", "walks/chunk"});

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max=*/4)) {
    Graph& graph = named.graph;
    const NodeId source = SampleQuerySources(graph, 1)[0];
    PprQuery query;
    query.source = source;

    UpdateWorkloadOptions workload;
    workload.count = kUpdates;
    workload.delete_fraction = 0.25;
    workload.skew = 0.5;
    workload.node_add_fraction = 0.05;
    workload.node_remove_fraction = 0.02;
    auto generated = GenerateUpdateStream(graph, workload);
    PPR_CHECK(generated.ok()) << generated.status().ToString();
    UpdateBatch stream = std::move(generated).ValueOrDie();

    std::vector<UpdateBatch> chunks(kChunks);
    for (size_t c = 0; c < kChunks; ++c) {
      chunks[c].updates.assign(
          stream.updates.begin() + c * stream.size() / kChunks,
          stream.updates.begin() + (c + 1) * stream.size() / kChunks);
    }

    // Truth per chunk boundary, shared by every solver: replay the
    // stream on a DynamicGraph and solve each snapshot to high
    // precision through the registry.
    std::vector<Graph> snapshots;
    std::vector<std::vector<double>> truths;
    std::vector<uint64_t> epochs;
    {
      DynamicGraph replay(graph);
      for (const UpdateBatch& chunk : chunks) {
        PPR_CHECK(replay.Apply(chunk).ok());
        snapshots.push_back(replay.Snapshot());
        epochs.push_back(replay.epoch());
        std::unique_ptr<Solver> truth_solver =
            MustCreate("powerpush:lambda=1e-10");
        PPR_CHECK(truth_solver->Prepare(snapshots.back()).ok());
        SolverContext truth_context;
        PprResult truth;
        PPR_CHECK(truth_solver->Solve(query, truth_context, &truth).ok());
        truths.push_back(std::move(truth.scores));
      }
    }

    // The exact tier runs at a fixed rmax tied to the graph size, the
    // approximate tier at a serving-grade eps.
    char dynfwdpush_spec[64];
    std::snprintf(dynfwdpush_spec, sizeof(dynfwdpush_spec),
                  "dynfwdpush:rmax=%.3e",
                  1e-4 / static_cast<double>(graph.num_edges()));
    const std::string specs[] = {dynfwdpush_spec, "dynfora:eps=0.3",
                                 "dynspeedppr:eps=0.3"};

    for (const std::string& spec : specs) {
      std::unique_ptr<Solver> solver = MustCreate(spec);
      PPR_CHECK(solver->Prepare(graph).ok());
      DynamicSolver* dynamic = solver->AsDynamic();
      PPR_CHECK(dynamic != nullptr);
      const std::string solver_name(solver->name());

      SolverContext context;
      PprResult epoch0;
      PPR_CHECK(solver->Solve(query, context, &epoch0).ok());

      double staleness = 0.0, tracker_err = 0.0;
      double repair_seconds_total = 0.0;
      uint64_t repair_pushes_total = 0;
      uint64_t walks_total = 0;
      uint64_t resize_events_total = 0;
      double bound = 0.0;
      for (size_t c = 0; c < kChunks; ++c) {
        UpdateStats stats;
        Status applied = dynamic->ApplyUpdates(chunks[c], &stats);
        PPR_CHECK(applied.ok()) << applied.ToString();
        repair_seconds_total += stats.seconds;
        repair_pushes_total += stats.push_operations;
        walks_total += stats.walks_resampled;
        resize_events_total += stats.resize_events;

        PprResult repaired;
        PPR_CHECK(solver->Solve(query, context, &repaired).ok());
        staleness = FrozenL1(epoch0.scores, truths[c]);
        tracker_err = L1Distance(repaired.scores, truths[c]);
        bound = repaired.l1_bound;
        json.Add()
            .Str("dataset", named.paper_name)
            .Str("solver", solver_name)
            .Str("kind", "chunk")
            .Int("epoch", stats.epoch)
            .Int("chunk", c + 1)
            .Num("staleness", staleness)
            .Num("tracker_err", tracker_err)
            .Num("bound", repaired.l1_bound)
            .Int("repair_pushes", stats.push_operations)
            .Int("walks_resampled", stats.walks_resampled)
            .Int("resize_events", stats.resize_events)
            .Int("index_bytes", solver->IndexBytes())
            .Num("repair_seconds", stats.seconds);
      }

      // The alternative ApplyUpdates replaces: re-Prepare the same spec
      // on the final snapshot and answer the query once from scratch
      // (for the walk-index tier this rebuilds the whole index; the
      // acceptance criterion is repair/chunk << this).
      Timer reprepare_timer;
      std::unique_ptr<Solver> rebuilt = MustCreate(spec);
      PPR_CHECK(rebuilt->Prepare(snapshots.back()).ok());
      SolverContext rebuilt_context;
      PprResult rebuilt_result;
      PPR_CHECK(rebuilt->Solve(query, rebuilt_context, &rebuilt_result).ok());
      const double reprepare_seconds = reprepare_timer.ElapsedSeconds();
      // One summary row per (dataset, solver) — kind distinguishes it
      // from the per-chunk curve rows; its repair_* fields are
      // per-chunk averages, set against the rebuild they replace.
      json.Add()
          .Str("dataset", named.paper_name)
          .Str("solver", solver_name)
          .Str("kind", "summary")
          .Int("epoch", epochs.back())
          .Int("chunks", kChunks)
          .Num("staleness", staleness)
          .Num("tracker_err", tracker_err)
          .Num("bound", bound)
          .Int("repair_pushes_per_chunk", repair_pushes_total / kChunks)
          .Int("walks_resampled_per_chunk", walks_total / kChunks)
          .Int("resize_events", resize_events_total)
          .Int("index_bytes", solver->IndexBytes())
          .Num("repair_seconds_per_chunk", repair_seconds_total / kChunks)
          .Num("reprepare_seconds", reprepare_seconds);

      char stale_buf[32], err_buf[32], bound_buf[32], pushes_buf[32],
          walks_buf[32];
      std::snprintf(stale_buf, sizeof(stale_buf), "%.2e", staleness);
      std::snprintf(err_buf, sizeof(err_buf), "%.2e", tracker_err);
      std::snprintf(bound_buf, sizeof(bound_buf), "%.1e", bound);
      std::snprintf(pushes_buf, sizeof(pushes_buf), "%llu",
                    static_cast<unsigned long long>(repair_pushes_total /
                                                    kChunks));
      std::snprintf(walks_buf, sizeof(walks_buf), "%llu",
                    static_cast<unsigned long long>(walks_total / kChunks));
      table.AddRow({named.paper_name, solver_name, stale_buf, err_buf,
                    bound_buf, HumanSeconds(repair_seconds_total / kChunks),
                    HumanSeconds(reprepare_seconds), pushes_buf, walks_buf});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  json.Write();
  std::printf("Expected: staleness grows with the stream while every "
              "repaired estimate stays within its bound, at a per-chunk "
              "cost well below re-preparing the solver (for the "
              "walk-index tier that rebuild includes the full index).\n");
  return 0;
}
