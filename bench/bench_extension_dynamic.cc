// Extension bench (beyond the paper's figures): evolving-graph PPR.
//
// §7 cites a line of work on PPR over dynamic graphs; this bench
// quantifies what the incremental tracker (core/dynamic_ppr.h) buys over
// re-solving from scratch with FIFO-FwdPush after every edge arrival, on
// a stream of random insertions into each stand-in dataset.

#include <cstdio>

#include "bench_common.h"
#include "core/dynamic_ppr.h"
#include "core/forward_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Extension: incremental PPR under edge insertions",
      "Mean cost per arriving edge: incremental repair vs from-scratch\n"
      "FIFO-FwdPush at the same rmax. Stream: 200 random insertions.");

  constexpr int kInsertions = 200;
  TablePrinter table({"Dataset", "repair(s)", "scratch(s)", "speedup",
                      "repair pushes", "l1 bound"});

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max=*/4)) {
    Graph& graph = named.graph;
    const NodeId source = SampleQuerySources(graph, 1)[0];
    DynamicGraph dynamic(graph);
    DynamicSsppr::Options options;
    options.rmax = 1e-7 / static_cast<double>(graph.num_edges()) * 1e3;
    DynamicSsppr tracker(&dynamic, source, options);

    Rng rng(99);
    uint64_t total_pushes = 0;
    Timer repair_timer;
    std::vector<std::pair<NodeId, NodeId>> inserted;
    for (int i = 0; i < kInsertions; ++i) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(dynamic.num_nodes()));
      NodeId w = static_cast<NodeId>(rng.NextBounded(dynamic.num_nodes()));
      if (u == w) continue;
      total_pushes += tracker.AddEdge(u, w);
      inserted.emplace_back(u, w);
    }
    const double repair_seconds =
        repair_timer.ElapsedSeconds() / inserted.size();

    // From-scratch baseline: one full solve on the final snapshot (a
    // per-insertion re-solve would cost this every arrival).
    Graph final_snapshot = dynamic.Snapshot();
    ForwardPushOptions scratch;
    scratch.rmax = options.rmax;
    PprEstimate estimate;
    Timer scratch_timer;
    FifoForwardPush(final_snapshot, source, scratch, &estimate);
    const double scratch_seconds = scratch_timer.ElapsedSeconds();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.0fx",
                  scratch_seconds / repair_seconds);
    char bound[32];
    std::snprintf(bound, sizeof(bound), "%.1e", tracker.ResidueL1());
    table.AddRow({named.paper_name, HumanSeconds(repair_seconds),
                  HumanSeconds(scratch_seconds), speedup,
                  HumanCount(total_pushes / inserted.size()), bound});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: repair orders of magnitude cheaper per arrival "
              "than a from-scratch solve, at the same error bound.\n");
  return 0;
}
