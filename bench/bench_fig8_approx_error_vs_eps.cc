// Regenerates Figure 8 of the paper: actual l1-error versus epsilon for
// the approximate algorithms, against a PowerPush ground truth at the
// highest precision double can resolve (the paper uses lambda=1e-17; we
// use 1e-15, far below every error measured here).
//
// Expected shape: SpeedPPR the most accurate at small eps (up to an
// order of magnitude); index-based variants noisier than index-free
// (they lean harder on random walks, as §8.2 explains).

#include <cstdio>

#include "approx/fora.h"
#include "approx/resacc.h"
#include "approx/speedppr.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 8: actual l1-error vs epsilon",
      "Ground truth: PowerPush at lambda=1e-15. mu = 1/n; errors\n"
      "averaged over query sources.");

  const size_t query_count = BenchQueryCount(2);
  const std::vector<double> epsilons = {0.5, 0.4, 0.3, 0.2, 0.1};

  bench::BenchJsonWriter json("fig8");
  for (auto& named : LoadBenchDatasets(bench::kApproxScale)) {
    Graph& graph = named.graph;
    const NodeId n = graph.num_nodes();
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s (n=%u) ---\n", named.paper_name.c_str(), n);

    std::vector<std::vector<double>> truths;
    for (NodeId s : sources) truths.push_back(ComputeGroundTruth(graph, s));

    const uint64_t w_small = ChernoffWalkCount(n, 0.1, 1.0 / n);
    Rng fora_index_rng(21);
    WalkIndex fora_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kForaPlus, w_small, fora_index_rng);
    Rng speed_index_rng(22);
    WalkIndex speed_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, speed_index_rng);

    TablePrinter table({"eps", "SpeedPPR", "SpeedPPR-Idx", "FORA",
                        "FORA-Idx", "ResAcc"});
    for (double eps : epsilons) {
      ApproxOptions options;
      options.epsilon = eps;
      Rng rng(3000 + static_cast<uint64_t>(eps * 100));
      std::vector<double> out;
      auto mean_error = [&](auto&& run) {
        std::vector<double> errors;
        for (size_t i = 0; i < sources.size(); ++i) {
          run(sources[i]);
          errors.push_back(L1Distance(out, truths[i]));
        }
        return Mean(errors);
      };

      double speed = mean_error(
          [&](NodeId s) { SpeedPpr(graph, s, options, rng, &out); });
      double speed_idx = mean_error([&](NodeId s) {
        SpeedPpr(graph, s, options, rng, &out, &speed_index);
      });
      double fora = mean_error(
          [&](NodeId s) { Fora(graph, s, options, rng, &out); });
      double fora_idx = mean_error([&](NodeId s) {
        Fora(graph, s, options, rng, &out, &fora_index);
      });
      double resacc = mean_error(
          [&](NodeId s) { ResAcc(graph, s, options, rng, &out); });

      auto fmt = [](double e) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%.2e", e);
        return std::string(buf);
      };
      char eps_buf[16];
      std::snprintf(eps_buf, sizeof(eps_buf), "%.1f", eps);
      table.AddRow({eps_buf, fmt(speed), fmt(speed_idx), fmt(fora),
                    fmt(fora_idx), fmt(resacc)});
      json.Add()
          .Str("dataset", named.paper_name)
          .Num("eps", eps)
          .Num("speedppr", speed)
          .Num("speedppr_index", speed_idx)
          .Num("fora", fora)
          .Num("fora_index", fora_idx)
          .Num("resacc", resacc);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected shape: SpeedPPR best at small eps; indexed "
              "variants noisier than index-free ones.\n");
  return 0;
}
