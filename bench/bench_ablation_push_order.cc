// Ablation: push-ordering disciplines for Forward Push.
//
// Algorithm 1 allows *any* active node to be pushed; the paper analyzes
// the FIFO discipline (Theorem 4.3) and argues (§5) that structure, not
// cleverness, wins: FIFO is as effective as greedy orderings while being
// far cheaper to maintain. This bench quantifies that claim:
//
//   fifo       — Algorithm 2 (ring buffer, O(1)/update)
//   priority   — max-unit-benefit first (indexed heap, O(log n)/update)
//   simultaneous — SimFwdPush / PowItr (iteration-synchronous)
//
// reported per dataset: wall-clock and #edge pushes to reach the paper's
// lambda.

#include <cstdio>

#include "bench_common.h"
#include "core/forward_push.h"
#include "core/power_push.h"
#include "core/priority_push.h"
#include "core/sim_forward_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Ablation: Forward Push ordering disciplines",
      "Work and wall-clock to reach lambda = min(1e-8, 1/m). The\n"
      "'arbitrary pick' freedom of Algorithm 1, instantiated 3 ways.");

  const size_t query_count = BenchQueryCount(3);

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    const double rmax = lambda / static_cast<double>(graph.num_edges());
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"ordering", "mean time(s)", "edge pushes"});
    PprEstimate estimate;

    uint64_t pushes = 0;
    auto fifo_times = TimePerQuery(sources, [&](NodeId s) {
      ForwardPushOptions options;
      options.rmax = rmax;
      pushes += FifoForwardPush(graph, s, options, &estimate).edge_pushes;
    });
    table.AddRow({"fifo", HumanSeconds(Mean(fifo_times)),
                  HumanCount(pushes / sources.size())});

    pushes = 0;
    auto priority_times = TimePerQuery(sources, [&](NodeId s) {
      ForwardPushOptions options;
      options.rmax = rmax;
      pushes +=
          PriorityForwardPush(graph, s, options, &estimate).edge_pushes;
    });
    table.AddRow({"priority", HumanSeconds(Mean(priority_times)),
                  HumanCount(pushes / sources.size())});

    pushes = 0;
    auto sim_times = TimePerQuery(sources, [&](NodeId s) {
      pushes +=
          SimForwardPush(graph, s, 0.2, lambda, &estimate).edge_pushes;
    });
    table.AddRow({"simultaneous", HumanSeconds(Mean(sim_times)),
                  HumanCount(pushes / sources.size())});

    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nExpected: priority needs the fewest pushes but pays heap "
              "overhead; fifo is the practical sweet spot (Theorem 4.3).\n");
  return 0;
}
