// Ablation: push-ordering disciplines for Forward Push.
//
// Algorithm 1 allows *any* active node to be pushed; the paper analyzes
// the FIFO discipline (Theorem 4.3) and argues (§5) that structure, not
// cleverness, wins: FIFO is as effective as greedy orderings while being
// far cheaper to maintain. This bench quantifies that claim through the
// registry solvers that embody each discipline:
//
//   fifo         — "fwdpush" (Algorithm 2: ring buffer, O(1)/update)
//   priority     — "prioritypush" (max-unit-benefit first, indexed heap)
//   simultaneous — "powitr" (iteration-synchronous; §3.1 shows vanilla
//                  power iteration IS simultaneous forward push)
//
// Reported per dataset: wall-clock and #edge pushes to reach the paper's
// lambda; emits BENCH_ablation_push_order.json.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using namespace ppr;

struct Discipline {
  const char* name;
  const char* spec;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: Forward Push ordering disciplines",
      "Work and wall-clock to reach lambda = min(1e-8, 1/m). The\n"
      "'arbitrary pick' freedom of Algorithm 1, instantiated 3 ways.");

  const size_t query_count = BenchQueryCount(3);
  const std::vector<Discipline> disciplines = {
      {"fifo", "fwdpush"},
      {"priority", "prioritypush"},
      {"simultaneous", "powitr"},
  };

  bench::BenchJsonWriter json("ablation_push_order");
  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"ordering", "mean time(s)", "edge pushes"});
    for (const Discipline& discipline : disciplines) {
      auto created = SolverRegistry::Global().Create(discipline.spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
      Status prepared = solver->Prepare(graph);
      PPR_CHECK(prepared.ok()) << prepared.ToString();

      SolverContext context;
      PprResult result;
      PprQuery query;
      query.lambda = lambda;
      uint64_t pushes = 0;
      auto times = TimePerQuery(sources, [&](NodeId s) {
        query.source = s;
        Status status = solver->Solve(query, context, &result);
        PPR_CHECK(status.ok()) << status.ToString();
        pushes += result.stats.edge_pushes;
      });
      const double mean_time = Mean(times);
      const uint64_t per_query = pushes / sources.size();
      table.AddRow({discipline.name, HumanSeconds(mean_time),
                    HumanCount(per_query)});
      json.Add()
          .Str("dataset", named.name)
          .Str("ordering", discipline.name)
          .Str("spec", discipline.spec)
          .Num("lambda", lambda)
          .Num("mean_seconds", mean_time)
          .Int("edge_pushes_per_query", per_query);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected: priority needs the fewest pushes but pays heap "
              "overhead; fifo is the practical sweet spot (Theorem 4.3).\n");
  return 0;
}
