// Serve-path throughput and latency: PprServer answering a fixed query
// set from concurrent clients, swept over worker counts and solvers.
// Emits BENCH_serve.json (qps, qps per worker, p50/p99/max latency) so
// serving regressions are trackable across commits, next to the
// per-query kernel numbers from bench_scaling.
//
// Expected shape: qps grows with workers until the thread budget or the
// per-query kernel parallelism saturates the machine; qps_per_worker > 1
// everywhere (queries here are millisecond-scale); p99 stays within a
// small multiple of p50 — the context pool keeps per-query setup O(touched).

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "serve/ppr_server.h"
#include "util/fault_injection.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "util/worker_pool.h"

namespace {

using namespace ppr;

struct ServeLoad {
  double wall_seconds = 0.0;
  std::vector<double> latencies;  ///< successful queries only
  uint64_t accepted = 0;
  uint64_t deadline_misses = 0;  ///< shed in-queue or expired mid-solve
  uint64_t rejected = 0;
};

/// `clients` threads split `queries` round-robin and submit them as fast
/// as the bounded queue admits (blocking batch discipline). With
/// `deadline_ms` > 0 every query carries that completion budget, and
/// queries that miss it (shed in-queue or stopped mid-solve) are counted
/// instead of crashing the bench — that miss rate is the measurement.
ServeLoad DriveLoad(PprServer& server, const std::vector<PprQuery>& queries,
                    unsigned clients, uint64_t deadline_ms) {
  std::vector<std::vector<double>> per_client(clients);
  std::vector<uint64_t> misses(clients, 0);
  std::vector<uint64_t> accepted(clients, 0);
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<PprFuture> futures;
      for (size_t i = c; i < queries.size(); i += clients) {
        PprQuery query = queries[i];
        if (deadline_ms > 0) {
          query.deadline = std::chrono::milliseconds(deadline_ms);
        }
        // Block politely when the queue is full: this bench measures
        // capacity, not admission refusal.
        while (true) {
          auto submitted = server.Submit(query, {}, /*seed=*/1 + i);
          if (submitted.ok()) {
            futures.push_back(std::move(submitted).ValueOrDie());
            break;
          }
          PPR_CHECK(submitted.status().code() == StatusCode::kUnavailable)
              << submitted.status().ToString();
          std::this_thread::yield();
        }
      }
      accepted[c] = futures.size();
      for (PprFuture& f : futures) {
        PprResult result;
        const Status status = f.Get(&result);
        if (status.ok()) {
          per_client[c].push_back(f.latency_seconds());
        } else if (status.code() == StatusCode::kDeadlineExceeded) {
          misses[c]++;
        } else {
          PPR_CHECK(false) << "unexpected serve status: " << status.ToString();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ServeLoad load;
  load.wall_seconds = timer.ElapsedSeconds();
  for (unsigned c = 0; c < clients; ++c) {
    load.latencies.insert(load.latencies.end(), per_client[c].begin(),
                          per_client[c].end());
    load.deadline_misses += misses[c];
    load.accepted += accepted[c];
  }
  load.rejected = server.Snapshot().rejected;
  return load;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t deadline_ms = 0;
  bool chaos = false;
  FlagParser flags;
  flags.AddUint64("deadline_ms", &deadline_ms,
                  "per-query completion budget; 0 = no deadline");
  flags.AddBool("chaos", &chaos,
                "inject deterministic solver slowness (fault-injection "
                "build only) and report p99 under it");
  if (Status status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  bench::PrintHeader(
      "Serve path: PprServer throughput and latency",
      "Fixed query set, concurrent clients; workers swept up to the\n"
      "thread budget. Latency = submit-to-completion per query.\n"
      "--deadline_ms bounds each query (missed deadlines are counted,\n"
      "not crashed on); --chaos injects deterministic solver slowness.");

#if PPR_FAULT_INJECTION
  if (chaos) {
    // Deterministic slowness on the solve path: every third-ish solve
    // sleeps 500us. p99_under_injected_slowness quantifies how the
    // serving tier degrades when the kernels misbehave.
    FaultSpec slow;
    slow.probability = 0.3;
    slow.delay = std::chrono::microseconds(500);
    FaultInjector::Global().SetFault("solver.solve", slow);
    FaultInjector::Global().Enable(/*seed=*/0xC4A05ULL);
  }
#else
  if (chaos) {
    std::fprintf(stderr,
                 "--chaos ignored: built with -DPPR_FAULT_INJECTION=OFF\n");
    chaos = false;
  }
#endif

  const size_t query_count = 64 * BenchQueryCount(4);
  bench::BenchJsonWriter json("serve");

  std::vector<unsigned> worker_counts = {1, 2, 4};
  const unsigned budget = ThreadBudget();
  while (worker_counts.back() * 2 <= budget) {
    worker_counts.push_back(worker_counts.back() * 2);
  }

  const std::vector<std::pair<const char*, const char*>> hosted = {
      {"PowerPush", "powerpush:lambda=1e-7"},
      {"SpeedPPR", "speedppr:eps=0.5"},
  };

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max_count=*/2)) {
    Graph& graph = named.graph;
    std::printf("\n--- %s (n=%u, m=%llu, %zu queries) ---\n",
                named.paper_name.c_str(), graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()),
                query_count);
    auto sources = SampleQuerySources(graph, query_count);
    std::vector<PprQuery> queries(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) queries[i].source = sources[i];

    for (const auto& [label, spec] : hosted) {
      TablePrinter table({"workers", "clients", "qps", "qps/worker",
                          "p50(ms)", "p99(ms)", "max(ms)"});
      for (unsigned workers : worker_counts) {
        PprServerOptions options;
        options.workers = workers;
        options.queue_capacity = 256;
        PprServer server(options);
        PPR_CHECK_OK(server.AddSolver(spec, graph));
        PPR_CHECK_OK(server.Start());
        const unsigned clients = workers;  // closed loop, one per worker
        ServeLoad load = DriveLoad(server, queries, clients, deadline_ms);
        const uint64_t shed = server.Snapshot().shed;
        server.Stop();

        const double qps =
            static_cast<double>(load.latencies.size()) / load.wall_seconds;
        const double miss_rate =
            load.accepted > 0 ? static_cast<double>(load.deadline_misses) /
                                    static_cast<double>(load.accepted)
                              : 0.0;
        const double p50 = Percentile(load.latencies, 50.0) * 1e3;
        const double p99 = Percentile(load.latencies, 99.0) * 1e3;
        const double pmax = Percentile(load.latencies, 100.0) * 1e3;
        char row[5][32];
        std::snprintf(row[0], sizeof(row[0]), "%.0f", qps);
        std::snprintf(row[1], sizeof(row[1]), "%.1f", qps / workers);
        std::snprintf(row[2], sizeof(row[2]), "%.3f", p50);
        std::snprintf(row[3], sizeof(row[3]), "%.3f", p99);
        std::snprintf(row[4], sizeof(row[4]), "%.3f", pmax);
        table.AddRow({std::to_string(workers), std::to_string(clients),
                      row[0], row[1], row[2], row[3], row[4]});

        json.Add()
            .Str("dataset", named.name)
            .Str("solver", spec)
            .Int("workers", workers)
            .Int("clients", clients)
            .Int("queries", load.latencies.size())
            .Int("rejected", load.rejected)
            .Num("wall_seconds", load.wall_seconds)
            .Num("qps", qps)
            .Num("qps_per_worker", qps / workers)
            .Num("p50_ms", p50)
            .Num("p99_ms", p99)
            .Num("max_ms", pmax)
            // Robustness fields: always present so the dashboard schema
            // is stable; zero in a deadline-free fault-free run.
            .Int("shed", shed)
            .Num("deadline_miss_rate", miss_rate)
            .Num("p99_under_injected_slowness", chaos ? p99 : 0.0);
      }
      std::printf("%s — %s\n%s", label, spec, table.ToString().c_str());
    }
  }
  json.Write();
  std::printf("\nExpected shape: qps scales with workers; qps/worker > 1\n"
              "throughout (millisecond queries on a warm context pool).\n");
  return 0;
}
