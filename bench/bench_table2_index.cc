// Regenerates Table 2 of the paper: index size and construction time for
//   * BePI (high-precision, matrix-based index),
//   * FORA-Index (walk index sized for epsilon = 0.1, its smallest
//     benchmarked epsilon),
//   * SpeedPPR-Index (walk index of at most m walks, epsilon-independent).
//
// Expected shape (paper): SpeedPPR's index is ~10x smaller and ~10x
// faster to build than FORA's; BePI's blows up with graph density
// (Orkut is its worst case).

#include <cstdio>

#include "approx/monte_carlo.h"
#include "approx/walk_index.h"
#include "bench_common.h"
#include "bepi/bepi.h"
#include "eval/experiment.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Table 2: index size and construction time",
      "FORA index built for eps=0.1 (the paper's smallest); SpeedPPR's\n"
      "index is eps-independent. Sizes in bytes of the in-memory index.");

  TablePrinter table({"Dataset", "BePI size", "FORA size", "SpeedPPR size",
                      "BePI build(s)", "FORA build(s)", "SpeedPPR build(s)"});

  bench::BenchJsonWriter json("table2");
  for (auto& named : LoadBenchDatasets(bench::kApproxScale)) {
    Graph& graph = named.graph;
    const NodeId n = graph.num_nodes();

    graph.BuildInAdjacency();
    BepiOptions bepi_options;
    auto bepi = BepiSolver::Preprocess(graph, bepi_options);

    const double eps = 0.1;
    const uint64_t w = ChernoffWalkCount(n, eps, 1.0 / n);
    Rng fora_rng(1);
    Timer fora_timer;
    WalkIndex fora_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kForaPlus, w, fora_rng);
    const double fora_seconds = fora_timer.ElapsedSeconds();

    Rng speed_rng(2);
    Timer speed_timer;
    WalkIndex speed_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, speed_rng);
    const double speed_seconds = speed_timer.ElapsedSeconds();

    table.AddRow({named.paper_name, HumanBytes(bepi->IndexBytes()),
                  HumanBytes(fora_index.SizeBytes()),
                  HumanBytes(speed_index.SizeBytes()),
                  HumanSeconds(bepi->preprocess_seconds()),
                  HumanSeconds(fora_seconds), HumanSeconds(speed_seconds)});
    std::printf("  %-12s fora_walks=%s speed_walks=%s (m=%s) hubs=%u\n",
                named.name.c_str(),
                HumanCount(fora_index.total_walks()).c_str(),
                HumanCount(speed_index.total_walks()).c_str(),
                HumanCount(graph.num_edges()).c_str(), bepi->num_hubs());
    json.Add()
        .Str("dataset", named.paper_name)
        .Int("bepi_bytes", bepi->IndexBytes())
        .Int("fora_bytes", fora_index.SizeBytes())
        .Int("speedppr_bytes", speed_index.SizeBytes())
        .Num("bepi_build_seconds", bepi->preprocess_seconds())
        .Num("fora_build_seconds", fora_seconds)
        .Num("speedppr_build_seconds", speed_seconds)
        .Int("fora_walks", fora_index.total_walks())
        .Int("speedppr_walks", speed_index.total_walks());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  json.Write();
  std::printf("Expected shape: SpeedPPR index ~10x smaller / faster than "
              "FORA; BePI heaviest on dense graphs (Orkut).\n");
  return 0;
}
