// Regenerates Table 1 of the paper: dataset statistics (n, m, m/n, type)
// for the six synthetic stand-ins, plus degree-tail diagnostics showing
// the stand-ins preserve the originals' heavy-tailed structure, plus a
// registry-driven reference column: the paper solver's ("powerpush" at
// the paper lambda, dispatched purely through SolverRegistry) median
// time per query on each dataset. Emits BENCH_table1.json.

#include <cstdio>
#include <memory>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/graph_stats.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Table 1: dataset statistics",
      "Paper: DBLP 317K/2.10M, Web-St 282K/2.31M, Pokec 1.63M/30.6M,\n"
      "LJ 4.85M/68.4M, Orkut 3.07M/234M, Twitter 41.7M/1.47B.\n"
      "Ours: synthetic stand-ins at reduced scale, same m/n and tail.");

  const size_t query_count = BenchQueryCount(3);
  bench::BenchJsonWriter json("table1");
  TablePrinter table({"Name", "Stands in for", "n", "m", "m/n", "Type",
                      "max outdeg", "top1% share", "dead ends",
                      "powerpush t/q"});
  for (const auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    const DatasetSpec& spec = FindDataset(named.name);
    GraphStats stats = ComputeGraphStats(named.graph);
    char mn[32];
    std::snprintf(mn, sizeof(mn), "%.2f", stats.avg_degree);
    char share[32];
    std::snprintf(share, sizeof(share), "%.3f", stats.top1pct_degree_share);

    // The registry reference solve: the same spec string any driver or
    // the CLI would use.
    auto created = SolverRegistry::Global().Create("powerpush");
    PPR_CHECK(created.ok()) << created.status().ToString();
    std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
    PPR_CHECK(solver->Prepare(named.graph).ok());
    SolverContext context;
    PprQuery base;
    base.lambda = HighPrecisionLambda(named.graph);
    const double median = Median(
        TimePerQuery(*solver, context,
                     SampleQuerySources(named.graph, query_count), base));

    table.AddRow({named.name, named.paper_name, HumanCount(stats.num_nodes),
                  HumanCount(stats.num_edges), mn,
                  spec.directed ? "directed" : "undirected",
                  std::to_string(stats.max_out_degree), share,
                  std::to_string(stats.dead_ends), HumanSeconds(median)});
    json.Add()
        .Str("dataset", named.name)
        .Str("paper_name", named.paper_name)
        .Int("n", stats.num_nodes)
        .Int("m", stats.num_edges)
        .Num("avg_degree", stats.avg_degree)
        .Int("max_out_degree", stats.max_out_degree)
        .Num("top1pct_degree_share", stats.top1pct_degree_share)
        .Int("dead_ends", stats.dead_ends)
        .Num("powerpush_median_seconds", median);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper m/n targets: DBLP 6.62, Web-St 8.20, Pokec 18.8, "
              "LJ 14.1, Orkut 76.3, Twitter 35.3\n");
  json.Write();
  return 0;
}
