// Regenerates Table 1 of the paper: dataset statistics (n, m, m/n, type)
// for the six synthetic stand-ins, plus degree-tail diagnostics showing
// the stand-ins preserve the originals' heavy-tailed structure.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"
#include "graph/datasets.h"
#include "graph/graph_stats.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Table 1: dataset statistics",
      "Paper: DBLP 317K/2.10M, Web-St 282K/2.31M, Pokec 1.63M/30.6M,\n"
      "LJ 4.85M/68.4M, Orkut 3.07M/234M, Twitter 41.7M/1.47B.\n"
      "Ours: synthetic stand-ins at reduced scale, same m/n and tail.");

  TablePrinter table({"Name", "Stands in for", "n", "m", "m/n", "Type",
                      "max outdeg", "top1% share", "dead ends"});
  for (const auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    const DatasetSpec& spec = FindDataset(named.name);
    GraphStats stats = ComputeGraphStats(named.graph);
    char mn[32];
    std::snprintf(mn, sizeof(mn), "%.2f", stats.avg_degree);
    char share[32];
    std::snprintf(share, sizeof(share), "%.3f", stats.top1pct_degree_share);
    table.AddRow({named.name, named.paper_name, HumanCount(stats.num_nodes),
                  HumanCount(stats.num_edges), mn,
                  spec.directed ? "directed" : "undirected",
                  std::to_string(stats.max_out_degree), share,
                  std::to_string(stats.dead_ends)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper m/n targets: DBLP 6.62, Web-St 8.20, Pokec 18.8, "
              "LJ 14.1, Orkut 76.3, Twitter 35.3\n");
  return 0;
}
