// Regenerates Figure 7 of the paper: approximate-SSPPR query time versus
// epsilon in {0.5, 0.4, 0.3, 0.2, 0.1} for SpeedPPR, SpeedPPR-Index,
// FORA, FORA-Index, ResAcc, with high-precision PowerPush included as a
// baseline (as the paper deliberately does).
//
// FORA's index is built once for eps=0.1 and reused for larger eps;
// SpeedPPR's index is eps-independent by construction.
//
// Expected shape: SpeedPPR-Index fastest; SpeedPPR ~ FORA-Index;
// FORA / ResAcc slowest; PowerPush flat in eps.

#include <cstdio>

#include "approx/fora.h"
#include "approx/resacc.h"
#include "approx/speedppr.h"
#include "bench_common.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 7: approximate query time (seconds) vs epsilon",
      "mu = 1/n, averaged over query sources. FORA index built at\n"
      "eps=0.1 and reused; SpeedPPR index is eps-independent.");

  const size_t query_count = BenchQueryCount(2);
  const std::vector<double> epsilons = {0.5, 0.4, 0.3, 0.2, 0.1};

  for (auto& named : LoadBenchDatasets(bench::kApproxScale)) {
    Graph& graph = named.graph;
    const NodeId n = graph.num_nodes();
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s (n=%u, m=%llu) ---\n", named.paper_name.c_str(), n,
                static_cast<unsigned long long>(graph.num_edges()));

    const uint64_t w_small = ChernoffWalkCount(n, 0.1, 1.0 / n);
    Rng fora_index_rng(11);
    WalkIndex fora_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kForaPlus, w_small, fora_index_rng);
    Rng speed_index_rng(12);
    WalkIndex speed_index = WalkIndex::Build(
        graph, 0.2, WalkIndex::Sizing::kSpeedPpr, 0, speed_index_rng);

    TablePrinter table({"eps", "SpeedPPR", "SpeedPPR-Idx", "FORA",
                        "FORA-Idx", "ResAcc", "PowerPush"});
    for (double eps : epsilons) {
      ApproxOptions options;
      options.epsilon = eps;
      Rng rng(1000 + static_cast<uint64_t>(eps * 100));
      std::vector<double> out;
      PprEstimate estimate;

      double speed = Mean(TimePerQuery(sources, [&](NodeId s) {
        SpeedPpr(graph, s, options, rng, &out);
      }));
      double speed_idx = Mean(TimePerQuery(sources, [&](NodeId s) {
        SpeedPpr(graph, s, options, rng, &out, &speed_index);
      }));
      double fora = Mean(TimePerQuery(sources, [&](NodeId s) {
        Fora(graph, s, options, rng, &out);
      }));
      double fora_idx = Mean(TimePerQuery(sources, [&](NodeId s) {
        Fora(graph, s, options, rng, &out, &fora_index);
      }));
      double resacc = Mean(TimePerQuery(sources, [&](NodeId s) {
        ResAcc(graph, s, options, rng, &out);
      }));
      double power_push = Mean(TimePerQuery(sources, [&](NodeId s) {
        PowerPushOptions pp;
        pp.lambda = PaperLambda(graph);
        PowerPush(graph, s, pp, &estimate);
      }));

      char eps_buf[16];
      std::snprintf(eps_buf, sizeof(eps_buf), "%.1f", eps);
      table.AddRow({eps_buf, HumanSeconds(speed), HumanSeconds(speed_idx),
                    HumanSeconds(fora), HumanSeconds(fora_idx),
                    HumanSeconds(resacc), HumanSeconds(power_push)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nExpected shape: SpeedPPR-Index fastest; index-free "
              "SpeedPPR ~ FORA-Index; PowerPush flat in eps.\n");
  return 0;
}
