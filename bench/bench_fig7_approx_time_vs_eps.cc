// Regenerates Figure 7 of the paper: approximate-SSPPR query time versus
// epsilon in {0.5, 0.4, 0.3, 0.2, 0.1} for SpeedPPR, SpeedPPR-Index,
// FORA, FORA-Index, ResAcc, with high-precision PowerPush included as a
// baseline (as the paper deliberately does).
//
// FORA's index is built once for eps=0.1 and reused for larger eps;
// SpeedPPR's index is eps-independent by construction. Both index builds
// happen in Prepare() — every competitor is a SolverRegistry spec and
// shares one timing loop.
//
// Expected shape: SpeedPPR-Index fastest; SpeedPPR ~ FORA-Index;
// FORA / ResAcc slowest; PowerPush flat in eps.

#include <cstdio>
#include <memory>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 7: approximate query time (seconds) vs epsilon",
      "mu = 1/n, averaged over query sources. FORA index built at\n"
      "eps=0.1 and reused; SpeedPPR index is eps-independent.");

  const size_t query_count = BenchQueryCount(2);
  const std::vector<double> epsilons = {0.5, 0.4, 0.3, 0.2, 0.1};
  const std::vector<std::pair<const char*, const char*>> competitors = {
      {"SpeedPPR", "speedppr"},
      {"SpeedPPR-Idx", "speedppr-index:seed=12"},
      {"FORA", "fora"},
      {"FORA-Idx", "fora-index:index_eps=0.1,seed=11"},
      {"ResAcc", "resacc"},
      {"PowerPush", "powerpush"},  // lambda defaults to min(1e-8, 1/m)
  };

  bench::BenchJsonWriter json("fig7");
  for (auto& named : LoadBenchDatasets(bench::kApproxScale)) {
    Graph& graph = named.graph;
    const NodeId n = graph.num_nodes();
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s (n=%u, m=%llu) ---\n", named.paper_name.c_str(), n,
                static_cast<unsigned long long>(graph.num_edges()));

    // One Prepare per competitor per dataset: the index variants build
    // their walk index here, outside the timed region.
    std::vector<std::unique_ptr<Solver>> solvers;
    for (const auto& [label, spec] : competitors) {
      auto created = SolverRegistry::Global().Create(spec);
      PPR_CHECK(created.ok()) << created.status().ToString();
      solvers.push_back(std::move(created).ValueOrDie());
      Status prepared = solvers.back()->Prepare(graph);
      PPR_CHECK(prepared.ok()) << label << ": " << prepared.ToString();
    }

    TablePrinter table({"eps", "SpeedPPR", "SpeedPPR-Idx", "FORA",
                        "FORA-Idx", "ResAcc", "PowerPush"});
    for (double eps : epsilons) {
      PprQuery base;
      base.epsilon = eps;

      std::vector<std::string> row;
      char eps_buf[16];
      std::snprintf(eps_buf, sizeof(eps_buf), "%.1f", eps);
      row.emplace_back(eps_buf);
      for (size_t i = 0; i < solvers.size(); ++i) {
        SolverContext context(1000 + static_cast<uint64_t>(eps * 100));
        const double mean =
            Mean(TimePerQuery(*solvers[i], context, sources, base));
        row.push_back(HumanSeconds(mean));
        json.Add()
            .Str("dataset", named.name)
            .Str("solver", competitors[i].second)
            .Num("eps", eps)
            .Int("queries", sources.size())
            .Num("mean_seconds", mean);
      }
      table.AddRow(row);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected shape: SpeedPPR-Index fastest; index-free "
              "SpeedPPR ~ FORA-Index; PowerPush flat in eps.\n");
  return 0;
}
