// Sharded serving tier: throughput and latency versus shard count, and
// partition cut quality per partitioner. A fixed query set is driven
// through ShardedPprServer at 1, 2 and 4 shards under every partition
// scheme (owner routing — the serving default), plus scatter-gather
// rows at 2 and 4 shards to price the whole-vector fan-out path.
// Emits BENCH_shard.json (qps, p50/p99, cut fraction) so sharding
// regressions are trackable next to BENCH_serve.json.
//
// Expected shape: owner-routed qps holds roughly flat across shard
// counts at fixed per-shard workers (routing adds nanoseconds, the
// solve dominates); scatter-gather qps drops by about the shard count
// (every query runs everywhere); cut fraction is high for hash, lower
// for range on locality-ordered ids, and degree balances edges.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "graph/partition.h"
#include "serve/sharded_server.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace ppr;

using Routing = ShardedPprServerOptions::WholeVectorRouting;

struct ShardLoad {
  double wall_seconds = 0.0;
  std::vector<double> latencies;
};

/// `clients` threads split `queries` round-robin and submit as fast as
/// admission allows, blocking politely on backpressure — the sharded
/// analogue of bench_serve's DriveLoad.
ShardLoad DriveLoad(ShardedPprServer& server,
                    const std::vector<PprQuery>& queries, unsigned clients) {
  std::vector<std::vector<double>> per_client(clients);
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<PprFuture> futures;
      for (size_t i = c; i < queries.size(); i += clients) {
        while (true) {
          auto submitted = server.Submit(queries[i], {}, /*seed=*/1 + i);
          if (submitted.ok()) {
            futures.push_back(std::move(submitted).ValueOrDie());
            break;
          }
          PPR_CHECK(submitted.status().code() == StatusCode::kUnavailable)
              << submitted.status().ToString();
          std::this_thread::yield();
        }
      }
      for (PprFuture& f : futures) {
        PprResult result;
        PPR_CHECK_OK(f.Get(&result));
        per_client[c].push_back(f.latency_seconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ShardLoad load;
  load.wall_seconds = timer.ElapsedSeconds();
  for (unsigned c = 0; c < clients; ++c) {
    load.latencies.insert(load.latencies.end(), per_client[c].begin(),
                          per_client[c].end());
  }
  return load;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t workers_per_shard = 2;
  FlagParser flags;
  flags.AddUint64("workers_per_shard", &workers_per_shard,
                  "serving threads inside each shard");
  if (Status status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  bench::PrintHeader(
      "Sharded serving: qps/latency vs shard count, cut per partitioner",
      "Fixed query set through ShardedPprServer at 1/2/4 shards, every\n"
      "partition scheme (owner routing), plus scatter-gather rows at 2\n"
      "and 4 shards. cut = fraction of edges crossing fragments.");

  const char* spec = "speedppr:eps=0.5";
  const size_t query_count = 32 * BenchQueryCount(4);
  bench::BenchJsonWriter json("shard");

  struct Row {
    size_t shards;
    PartitionScheme scheme;
    Routing routing;
  };
  std::vector<Row> rows;
  for (PartitionScheme scheme :
       {PartitionScheme::kHash, PartitionScheme::kRange,
        PartitionScheme::kDegree}) {
    for (size_t shards : {1u, 2u, 4u}) {
      rows.push_back({shards, scheme, Routing::kOwner});
    }
  }
  rows.push_back({2, PartitionScheme::kHash, Routing::kScatterGather});
  rows.push_back({4, PartitionScheme::kHash, Routing::kScatterGather});

  for (auto& named : LoadBenchDatasets(bench::kApproxScale, /*max_count=*/1)) {
    Graph& graph = named.graph;
    std::printf("\n--- %s (n=%u, m=%llu, %zu queries, %s) ---\n",
                named.paper_name.c_str(), graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()),
                query_count, spec);
    auto sources = SampleQuerySources(graph, query_count);
    std::vector<PprQuery> queries(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) queries[i].source = sources[i];

    TablePrinter table({"shards", "partition", "routing", "cut", "qps",
                        "p50(ms)", "p99(ms)"});
    for (const Row& row : rows) {
      ShardedPprServerOptions options;
      options.shards = row.shards;
      options.partition = row.scheme;
      options.whole_vector = row.routing;
      options.shard.workers = static_cast<unsigned>(workers_per_shard);
      options.shard.queue_capacity = 256;
      ShardedPprServer server(options);
      PPR_CHECK_OK(server.AddSolver(spec, graph));
      PPR_CHECK_OK(server.Start());
      const PartitionReport& report = server.partition().report();
      const unsigned clients =
          static_cast<unsigned>(row.shards) *
          static_cast<unsigned>(workers_per_shard);
      ShardLoad load = DriveLoad(server, queries, clients);
      server.Stop();

      const double qps =
          static_cast<double>(load.latencies.size()) / load.wall_seconds;
      const double p50 = Percentile(load.latencies, 50.0) * 1e3;
      const double p99 = Percentile(load.latencies, 99.0) * 1e3;
      const char* routing =
          row.routing == Routing::kScatterGather ? "scatter" : "owner";
      char cells[4][32];
      std::snprintf(cells[0], sizeof(cells[0]), "%.3f", report.cut_fraction);
      std::snprintf(cells[1], sizeof(cells[1]), "%.0f", qps);
      std::snprintf(cells[2], sizeof(cells[2]), "%.3f", p50);
      std::snprintf(cells[3], sizeof(cells[3]), "%.3f", p99);
      table.AddRow({std::to_string(row.shards),
                    std::string(PartitionSchemeName(row.scheme)), routing,
                    cells[0], cells[1], cells[2], cells[3]});

      json.Add()
          .Str("dataset", named.name)
          .Str("solver", spec)
          .Int("shards", row.shards)
          .Str("partition", std::string(PartitionSchemeName(row.scheme)))
          .Str("routing", routing)
          .Int("workers_per_shard", workers_per_shard)
          .Int("clients", clients)
          .Int("queries", load.latencies.size())
          .Num("wall_seconds", load.wall_seconds)
          .Num("qps", qps)
          .Num("p50_ms", p50)
          .Num("p99_ms", p99)
          .Num("cut_fraction", report.cut_fraction)
          .Int("cut_edges", report.cut_edges)
          .Num("edge_imbalance", report.edge_imbalance);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected shape: owner qps roughly flat across shard counts\n"
              "(routing is cheap); scatter qps divided by the fan width;\n"
              "degree partitioning shows the lowest edge imbalance.\n");
  return 0;
}
