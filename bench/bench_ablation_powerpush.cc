// Ablation bench for the three design decisions in PowerPush (paper §5):
//   1. the local FIFO phase (vs scanning from the start),
//   2. the dynamic l1-threshold epochs (vs a single epoch at lambda),
//   3. the scan-threshold switch point (frontier fraction of n).
//
// Each variant is a registry spec ("powerpush:queue_phase=false", ...),
// so the bench exercises the exact configuration surface users reach —
// not core/ internals. Reports wall-clock and #edge pushes (both
// Figure-5- and Figure-6-style effects), and emits
// BENCH_ablation_powerpush.json.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/context.h"
#include "api/registry.h"
#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using namespace ppr;

struct Variant {
  const char* name;
  const char* spec;
};

struct Outcome {
  double mean_seconds = 0.0;
  uint64_t pushes_per_query = 0;
};

Outcome RunSpec(const char* spec, const Graph& graph,
                const std::vector<NodeId>& sources, double lambda) {
  auto created = SolverRegistry::Global().Create(spec);
  PPR_CHECK(created.ok()) << created.status().ToString();
  std::unique_ptr<Solver> solver = std::move(created).ValueOrDie();
  Status prepared = solver->Prepare(graph);
  PPR_CHECK(prepared.ok()) << prepared.ToString();

  SolverContext context;
  PprResult result;
  PprQuery query;
  query.lambda = lambda;
  uint64_t pushes = 0;
  auto times = TimePerQuery(sources, [&](NodeId s) {
    query.source = s;
    Status status = solver->Solve(query, context, &result);
    PPR_CHECK(status.ok()) << status.ToString();
    pushes += result.stats.edge_pushes;
  });
  return {Mean(times), pushes / sources.size()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: PowerPush design choices",
      "Mean seconds and edge pushes over query sources at the paper's\n"
      "lambda. 'full' is Algorithm 3 as published; every variant is a\n"
      "registry spec.");

  const size_t query_count = BenchQueryCount(3);
  const std::vector<Variant> variants = {
      {"full", "powerpush"},
      {"no-queue-phase", "powerpush:queue_phase=false"},
      {"no-epochs", "powerpush:epochs=0"},
      {"neither", "powerpush:queue_phase=false,epochs=0"},
      {"scan@n/64", "powerpush:scan_threshold=0.015625"},
      {"scan@4n (queue-only)", "powerpush:scan_threshold=4.0"},
  };

  bench::BenchJsonWriter json("ablation_powerpush");
  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = HighPrecisionLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"variant", "mean time(s)", "edge pushes",
                        "vs full"});
    double full_time = 0.0;
    for (const Variant& variant : variants) {
      const Outcome outcome = RunSpec(variant.spec, graph, sources, lambda);
      if (full_time == 0.0) full_time = outcome.mean_seconds;
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2fx",
                    outcome.mean_seconds / full_time);
      table.AddRow({variant.name, HumanSeconds(outcome.mean_seconds),
                    HumanCount(outcome.pushes_per_query), ratio});
      json.Add()
          .Str("dataset", named.name)
          .Str("variant", variant.name)
          .Str("spec", variant.spec)
          .Num("lambda", lambda)
          .Num("mean_seconds", outcome.mean_seconds)
          .Int("edge_pushes_per_query", outcome.pushes_per_query)
          .Num("vs_full", outcome.mean_seconds / full_time);
    }
    std::printf("%s", table.ToString().c_str());
  }
  json.Write();
  std::printf("\nExpected: 'full' at or near the top; queue-only loses on "
              "dense frontiers, scan-only loses on sparse ones.\n");
  return 0;
}
