// Ablation bench for the three design decisions in PowerPush (paper §5):
//   1. the local FIFO phase (vs scanning from the start),
//   2. the dynamic l1-threshold epochs (vs a single epoch at lambda),
//   3. the scan-threshold switch point (frontier fraction of n).
//
// Reports wall-clock and #residue updates so both Figure-5-style and
// Figure-6-style effects of each optimization are visible.

#include <cstdio>

#include "bench_common.h"
#include "core/power_push.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

struct Variant {
  const char* name;
  ppr::PowerPushOptions options;
};

}  // namespace

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Ablation: PowerPush design choices",
      "Mean seconds and edge pushes over query sources at the paper's\n"
      "lambda. 'full' is Algorithm 3 as published.");

  const size_t query_count = BenchQueryCount(3);

  std::vector<Variant> variants;
  {
    Variant full{"full", {}};
    variants.push_back(full);
    Variant no_queue{"no-queue-phase", {}};
    no_queue.options.use_queue_phase = false;
    variants.push_back(no_queue);
    Variant no_epochs{"no-epochs", {}};
    no_epochs.options.use_epochs = false;
    variants.push_back(no_epochs);
    Variant neither{"neither", {}};
    neither.options.use_queue_phase = false;
    neither.options.use_epochs = false;
    variants.push_back(neither);
    Variant tiny_scan{"scan@n/64", {}};
    tiny_scan.options.scan_threshold_fraction = 1.0 / 64;
    variants.push_back(tiny_scan);
    Variant huge_scan{"scan@4n (queue-only)", {}};
    huge_scan.options.scan_threshold_fraction = 4.0;
    variants.push_back(huge_scan);
  }

  for (auto& named : LoadBenchDatasets(bench::kDefaultScale)) {
    Graph& graph = named.graph;
    const double lambda = PaperLambda(graph);
    auto sources = SampleQuerySources(graph, query_count);
    std::printf("\n--- %s ---\n", named.paper_name.c_str());

    TablePrinter table({"variant", "mean time(s)", "edge pushes",
                        "vs full"});
    double full_time = 0.0;
    for (const Variant& variant : variants) {
      PowerPushOptions options = variant.options;
      options.lambda = lambda;
      PprEstimate estimate;
      uint64_t pushes = 0;
      auto times = TimePerQuery(sources, [&](NodeId s) {
        pushes += PowerPush(graph, s, options, &estimate).edge_pushes;
      });
      const double mean_time = Mean(times);
      if (full_time == 0.0) full_time = mean_time;
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2fx", mean_time / full_time);
      table.AddRow({variant.name, HumanSeconds(mean_time),
                    HumanCount(pushes / sources.size()), ratio});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nExpected: 'full' at or near the top; queue-only loses on "
              "dense frontiers, scan-only loses on sparse ones.\n");
  return 0;
}
